"""Common accelerator interface, configuration and memory-system sizing.

Every design studied by the paper is modelled as an :class:`Accelerator`: it
is constructed from an :class:`AcceleratorConfig` (equivalent peak compute
bandwidth, memory sizes, optional off-chip channel, technology) and simulates
one resolved network layer at a time, producing a
:class:`repro.sim.results.LayerResult`.

The configuration captures the knobs the paper sweeps:

* ``equivalent_macs`` -- the scale of the design expressed as the number of
  16b x 16b multiply-accumulates per cycle of the *bit-parallel* baseline it
  matches (the x-axis of Figure 5: 32 ... 512; the default 128 is the
  configuration used everywhere else).
* activation/weight memory capacities and the off-chip DRAM channel
  (``None`` = the unconstrained-bandwidth mode of Sections 4.3/4.4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Optional

from repro.energy.area import AreaModel, DatapathArea
from repro.energy.power import DatapathPower, PowerModel
from repro.energy.tech import TechnologyParameters, TSMC_65NM
from repro.memory.dram import DRAMChannel
from repro.memory.edram import EDRAMMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.layout import BitInterleavedLayout, BitParallelLayout, Transposer
from repro.memory.sram import SRAMBuffer
from repro.nn.network import LayerWithPrecision
from repro.sim.results import LayerResult

__all__ = ["AcceleratorConfig", "Accelerator", "ceil_div", "LANES_PER_UNIT"]

#: Activations (and weights per filter) processed per inner-product unit per
#: cycle in the baseline -- N in the paper.
LANES_PER_UNIT = 16

#: Default memory sizing for the 128-MAC configuration (Section 4.5): DPNN
#: needs a 2 MB activation memory, Loom 1 MB; weight memories scale with the
#: number of concurrently processed filters.
_DEFAULT_EQUIVALENT_MACS = 128
_DPNN_AM_BYTES_AT_128 = 2 * 1024 * 1024
_LOOM_AM_BYTES_AT_128 = 1 * 1024 * 1024
_DPNN_WM_BYTES_AT_128 = 1 * 1024 * 1024
_LOOM_WM_BYTES_AT_128 = 2 * 1024 * 1024


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division (tiles never run partially empty for free)."""
    if b <= 0:
        raise ValueError(f"divisor must be > 0, got {b}")
    if a < 0:
        raise ValueError(f"dividend must be >= 0, got {a}")
    return -(-a // b)


@dataclass(frozen=True)
class AcceleratorConfig:
    """Configuration shared by all accelerator models.

    Parameters
    ----------
    equivalent_macs:
        Peak compute bandwidth expressed as equivalent 16b x 16b MACs per
        cycle of the bit-parallel baseline.
    clock_ghz:
        Clock frequency (1 GHz in the paper).
    am_capacity_bytes / wm_capacity_bytes:
        On-chip activation / weight memory capacity.  ``None`` picks the
        design's default scaled from the 128-MAC configuration.
    abin_bytes / about_bytes:
        Input/output activation SRAM buffer sizes.
    dram:
        Optional off-chip channel (Figure 5 uses LPDDR4-4267); ``None`` models
        unconstrained off-chip bandwidth.
    charge_offchip_energy:
        Whether off-chip transfer energy counts toward layer energy.  The
        paper's energy results exclude it; it is included by default here so
        the full cost is visible, and the Figure 5 harness turns it off to
        match the paper's accounting.
    tech:
        Technology parameter set.
    """

    equivalent_macs: int = _DEFAULT_EQUIVALENT_MACS
    clock_ghz: float = 1.0
    am_capacity_bytes: Optional[int] = None
    wm_capacity_bytes: Optional[int] = None
    abin_bytes: int = 8 * 1024
    about_bytes: int = 8 * 1024
    dram: Optional[DRAMChannel] = None
    charge_offchip_energy: bool = True
    tech: TechnologyParameters = TSMC_65NM

    def __post_init__(self) -> None:
        if self.equivalent_macs < LANES_PER_UNIT or \
                self.equivalent_macs % LANES_PER_UNIT:
            raise ValueError(
                f"equivalent_macs must be a positive multiple of {LANES_PER_UNIT}, "
                f"got {self.equivalent_macs}"
            )
        if self.clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be > 0, got {self.clock_ghz}")
        if self.abin_bytes < 1 or self.about_bytes < 1:
            raise ValueError("buffer sizes must be >= 1 byte")

    @property
    def scale(self) -> float:
        """Scale factor relative to the 128-MAC reference configuration."""
        return self.equivalent_macs / _DEFAULT_EQUIVALENT_MACS

    def with_dram(self, dram: Optional[DRAMChannel]) -> "AcceleratorConfig":
        return replace(self, dram=dram)

    def with_scale(self, equivalent_macs: int) -> "AcceleratorConfig":
        return replace(self, equivalent_macs=equivalent_macs)


class Accelerator(abc.ABC):
    """Abstract accelerator: cycle, traffic and energy model for one design."""

    #: Subclasses set this to their display name (e.g. ``"DPNN"``).
    name: str = "accelerator"

    def __init__(self, config: Optional[AcceleratorConfig] = None) -> None:
        self.config = config or AcceleratorConfig()
        self._power = DatapathPower(self.config.tech)
        self._area = DatapathArea(self.config.tech)
        self._power_model = PowerModel(self._power)
        self._area_model = AreaModel(self._area)
        self.hierarchy = self._build_hierarchy()

    # -- memory system ------------------------------------------------------------

    @property
    def uses_bit_interleaved_storage(self) -> bool:
        """Whether the design stores data bit-interleaved (precision-scaled)."""
        return False

    @property
    def stores_weights_serially(self) -> bool:
        """Whether *weight* storage is precision-scaled (Loom only)."""
        return False

    @property
    def stores_activations_serially(self) -> bool:
        """Whether *activation* storage is precision-scaled (Loom and Stripes)."""
        return self.uses_bit_interleaved_storage

    def default_am_bytes(self) -> int:
        base = (_LOOM_AM_BYTES_AT_128 if self.stores_activations_serially
                else _DPNN_AM_BYTES_AT_128)
        return max(64 * 1024, int(base))

    def default_wm_bytes(self) -> int:
        base = (_LOOM_WM_BYTES_AT_128 if self.stores_weights_serially
                else _DPNN_WM_BYTES_AT_128)
        return max(64 * 1024, int(base * self.config.scale))

    def _build_hierarchy(self) -> MemoryHierarchy:
        am_bytes = self.config.am_capacity_bytes or self.default_am_bytes()
        wm_bytes = self.config.wm_capacity_bytes or self.default_wm_bytes()
        weight_bus_bits = self.config.equivalent_macs * LANES_PER_UNIT
        act_bus_bits = LANES_PER_UNIT * LANES_PER_UNIT
        act_layout = (BitInterleavedLayout(group_size=act_bus_bits)
                      if self.stores_activations_serially else BitParallelLayout())
        weight_layout = (BitInterleavedLayout(group_size=weight_bus_bits)
                         if self.stores_weights_serially else BitParallelLayout())
        transposer = Transposer() if self.stores_activations_serially else None
        return MemoryHierarchy(
            activation_memory=EDRAMMemory("AM", am_bytes, width_bits=act_bus_bits),
            weight_memory=EDRAMMemory("WM", wm_bytes, width_bits=weight_bus_bits),
            abin=SRAMBuffer("ABin", self.config.abin_bytes, width_bits=act_bus_bits),
            about=SRAMBuffer("ABout", self.config.about_bytes,
                             width_bits=act_bus_bits),
            activation_layout=act_layout,
            weight_layout=weight_layout,
            dram=self.config.dram,
            transposer=transposer,
            clock_ghz=self.config.clock_ghz,
            charge_offchip_energy=self.config.charge_offchip_energy,
        )

    # -- per-design hooks -----------------------------------------------------------

    @abc.abstractmethod
    def compute_cycles(self, layer: LayerWithPrecision) -> float:
        """Datapath cycles for one layer (ignoring off-chip bandwidth)."""

    @abc.abstractmethod
    def datapath_pj_per_cycle(self) -> float:
        """Dynamic energy the datapath burns per active cycle."""

    @abc.abstractmethod
    def core_area_mm2(self) -> float:
        """Datapath (core) area of the design."""

    def storage_precisions(self, layer: LayerWithPrecision) -> tuple:
        """(weight_bits, activation_bits) used for storage/traffic accounting."""
        if self.uses_bit_interleaved_storage:
            return (layer.precision.weight_bits, layer.precision.activation_bits)
        return (16, 16)

    def utilization(self, layer: LayerWithPrecision,
                    compute_cycles: Optional[float] = None) -> float:
        """Fraction of peak datapath throughput used for this layer.

        ``compute_cycles`` lets callers that already scheduled the layer
        (``simulate_layer``) skip re-deriving the datapath cycles.
        """
        cycles = (compute_cycles if compute_cycles is not None
                  else self.compute_cycles(layer))
        if cycles <= 0:
            return 1.0
        ideal = layer.macs / self.config.equivalent_macs
        # For precision-exploiting designs "peak" moves with precision; report
        # utilisation against the fixed-precision peak which is what matters
        # for underutilisation effects (idle lanes/rows).
        return min(1.0, ideal / cycles)

    # -- simulation -----------------------------------------------------------------

    def simulate_layer(self, layer: LayerWithPrecision) -> LayerResult:
        """Simulate one layer: cycles, traffic and energy."""
        if not (layer.is_conv or layer.is_fc):
            raise ValueError(
                f"layer {layer.name!r} is not a compute layer"
            )
        compute_cycles = self.compute_cycles(layer)
        weight_bits, act_bits = self.storage_precisions(layer)
        traffic = self.hierarchy.layer_traffic(
            weight_count=layer.weight_count,
            input_activations=layer.input_activations,
            output_activations=layer.output_activations,
            weight_bits=weight_bits,
            activation_bits=act_bits,
            is_fc=layer.is_fc,
        )
        memory_cycles = self.hierarchy.memory_cycles(traffic)
        cycles = max(compute_cycles, memory_cycles)
        # Energy: the datapath burns its active power for compute cycles and a
        # reduced (clock-gated) power while stalled on memory; memory energy
        # is traffic based.
        stall_cycles = max(0.0, cycles - compute_cycles)
        datapath_pj = self.datapath_pj_per_cycle()
        datapath_energy = (compute_cycles * datapath_pj
                           + stall_cycles * datapath_pj * 0.25)
        memory_energy = self.hierarchy.memory_energy_pj(
            traffic, output_activations=layer.output_activations
        )
        energy = datapath_energy + memory_energy
        return LayerResult(
            layer_name=layer.name,
            layer_kind=layer.kind,
            cycles=cycles,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            energy_pj=energy,
            weight_bits_read=traffic.weight_bits,
            activation_bits_read=traffic.activation_in_bits,
            activation_bits_written=traffic.activation_out_bits,
            macs=layer.macs,
            utilization=self.utilization(layer, compute_cycles=compute_cycles),
        )

    # -- reporting -------------------------------------------------------------------

    def total_area_mm2(self) -> float:
        """Core plus on-chip memory area."""
        return self._area_model.total_mm2(self.core_area_mm2(), self.hierarchy)

    def describe(self) -> str:
        return (f"{self.name} ({self.config.equivalent_macs}-MAC equivalent, "
                f"{self.hierarchy.describe()})")
