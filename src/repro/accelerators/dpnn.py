"""DPNN: the DaDianNao-style bit-parallel baseline accelerator.

DPNN processes 16-bit fixed-point activations and weights.  Every cycle it
consumes N = 16 activations (broadcast to all filters) and 16 weights for each
of ``k`` filters, computing ``16 x k`` multiply-accumulates; the default
``k = 8`` gives the 128-MAC configuration the paper compares against.  Its
execution time does not depend on data precision: a layer simply takes as many
cycles as there are (windows x 16-term chunks x filter chunks) tiles.
"""

from __future__ import annotations

from typing import Optional

from repro.accelerators.base import (
    Accelerator,
    AcceleratorConfig,
    LANES_PER_UNIT,
    ceil_div,
)
from repro.nn.layers import Conv2D, FullyConnected
from repro.nn.network import LayerWithPrecision

__all__ = ["DPNN"]


class DPNN(Accelerator):
    """Bit-parallel fixed-precision baseline (DaDianNao-style)."""

    name = "DPNN"

    def __init__(self, config: Optional[AcceleratorConfig] = None) -> None:
        super().__init__(config)

    # -- structure ----------------------------------------------------------------

    @property
    def num_ip_units(self) -> int:
        """Number of inner-product units (k in the paper, 8 at the 128 scale)."""
        return self.config.equivalent_macs // LANES_PER_UNIT

    # -- cycles -------------------------------------------------------------------

    def compute_cycles(self, layer: LayerWithPrecision) -> float:
        if layer.is_conv:
            return float(self._conv_cycles(layer))
        return float(self._fc_cycles(layer))

    def _conv_cycles(self, layer: LayerWithPrecision) -> int:
        # Conv2D or MatMul; both expose the window/filter cost interface.
        conv: Conv2D = layer.layer  # type: ignore[assignment]
        windows = conv.num_windows(layer.input_shape)
        terms = conv.window_size(layer.input_shape)
        term_chunks = ceil_div(terms, LANES_PER_UNIT)
        filter_chunks = ceil_div(conv.out_channels, self.num_ip_units)
        return windows * term_chunks * filter_chunks

    def _fc_cycles(self, layer: LayerWithPrecision) -> int:
        fc: FullyConnected = layer.layer  # type: ignore[assignment]
        terms = layer.input_shape.size
        term_chunks = ceil_div(terms, LANES_PER_UNIT)
        filter_chunks = ceil_div(fc.out_features, self.num_ip_units)
        return term_chunks * filter_chunks

    # -- energy / area --------------------------------------------------------------

    def datapath_pj_per_cycle(self) -> float:
        return self._power.dpnn_pj_per_cycle(self.config.equivalent_macs)

    def core_area_mm2(self) -> float:
        return self._area.dpnn_core_mm2(self.config.equivalent_macs)
