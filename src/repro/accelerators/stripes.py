"""Stripes: the activation-bit-serial comparison point.

Stripes (Judd et al., MICRO 2016) processes activations bit-serially and
weights bit-parallel.  Convolutional layers therefore speed up by
``16 / Pa`` relative to the bit-parallel baseline (ideally), using the
profile-derived per-layer activation precisions; fully-connected layers see no
speedup because there is no weight reuse to amortise the serial processing
(the paper's Table 2 reports Stripes FCL performance of 1.00x and efficiency
of 0.88x).

Stripes stores activations bit-serially (precision-scaled traffic) but
weights at the full 16 bits.
"""

from __future__ import annotations

from typing import Optional

from repro.accelerators.base import (
    Accelerator,
    AcceleratorConfig,
    LANES_PER_UNIT,
    ceil_div,
)
from repro.accelerators.dpnn import DPNN
from repro.nn.layers import Conv2D
from repro.nn.network import LayerWithPrecision
from repro.quant.dynamic import DynamicPrecisionModel

__all__ = ["Stripes"]


class Stripes(Accelerator):
    """Activation-bit-serial accelerator exploiting per-layer activation precision."""

    name = "Stripes"

    #: Stripes processes this many windows concurrently to compensate for
    #: serial activations (matching Loom's 16 window lanes).
    WINDOW_LANES = 16

    def __init__(self, config: Optional[AcceleratorConfig] = None,
                 dynamic_precision: Optional[DynamicPrecisionModel] = None) -> None:
        super().__init__(config)
        # Plain Stripes uses only the static per-layer profile precisions.
        self.dynamic_precision = dynamic_precision or DynamicPrecisionModel(
            enabled=False
        )
        # A DPNN instance with the same configuration provides the FCL timing
        # (Stripes matches the bit-parallel engine on FCLs).
        self._dpnn = DPNN(config)

    # -- storage ------------------------------------------------------------------

    @property
    def uses_bit_interleaved_storage(self) -> bool:
        return True

    @property
    def stores_weights_serially(self) -> bool:
        return False

    def storage_precisions(self, layer: LayerWithPrecision) -> tuple:
        # Activations are stored bit-serially at the profile precision;
        # weights remain 16-bit.
        return (16, layer.precision.activation_bits)

    # -- structure ----------------------------------------------------------------

    @property
    def filter_lanes(self) -> int:
        """Concurrent filters (same as the baseline's inner-product unit count)."""
        return self.config.equivalent_macs // LANES_PER_UNIT

    # -- cycles -------------------------------------------------------------------

    def _activation_serial_bits(self, layer: LayerWithPrecision) -> float:
        """Serial steps spent per activation for this layer."""
        return self.dynamic_precision.effective_activation_bits(
            layer.precision.activation_bits, bits_per_cycle=1
        )

    def compute_cycles(self, layer: LayerWithPrecision) -> float:
        if layer.is_fc:
            # No weight reuse: matches the bit-parallel engine.
            return self._dpnn.compute_cycles(layer)
        # Conv2D or MatMul; both expose the window/filter cost interface.
        conv: Conv2D = layer.layer  # type: ignore[assignment]
        windows = conv.num_windows(layer.input_shape)
        terms = conv.window_size(layer.input_shape)
        window_chunks = ceil_div(windows, self.WINDOW_LANES)
        term_chunks = ceil_div(terms, LANES_PER_UNIT)
        filter_chunks = ceil_div(conv.out_channels, self.filter_lanes)
        serial_bits = self._activation_serial_bits(layer)
        return window_chunks * term_chunks * filter_chunks * serial_bits

    # -- energy / area --------------------------------------------------------------

    def datapath_pj_per_cycle(self) -> float:
        return self._power.stripes_pj_per_cycle(
            self.config.equivalent_macs,
            dynamic_precision=self.dynamic_precision.enabled,
        )

    def core_area_mm2(self) -> float:
        return self._area.stripes_core_mm2(
            self.config.equivalent_macs,
            dynamic_precision=self.dynamic_precision.enabled,
        )
