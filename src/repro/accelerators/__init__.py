"""Baseline accelerator models: DPNN (bit-parallel), Stripes and DStripes.

All accelerators -- the baselines here and Loom in :mod:`repro.core` -- share
the interface defined in :mod:`repro.accelerators.base`: a configuration
(equivalent peak MACs, memory sizing, optional off-chip channel) and a
``simulate_layer`` method that turns one resolved network layer into a
:class:`repro.sim.results.LayerResult` (cycles, traffic, energy).
"""

from repro.accelerators.base import (
    Accelerator,
    AcceleratorConfig,
    ceil_div,
    LANES_PER_UNIT,
)
from repro.accelerators.dpnn import DPNN
from repro.accelerators.stripes import Stripes
from repro.accelerators.dstripes import DStripes

__all__ = [
    "Accelerator",
    "AcceleratorConfig",
    "ceil_div",
    "LANES_PER_UNIT",
    "DPNN",
    "Stripes",
    "DStripes",
]
