"""Loom reproduction: a bit-serial, precision-exploiting CNN accelerator model.

This package reproduces "Loom: Exploiting Weight and Activation Precisions to
Accelerate Convolutional Neural Networks" (Sharify et al., DAC 2018) as a
pure-Python library:

* :mod:`repro.core` -- the Loom accelerator (SIP grid, schedules, LM1b/2b/4b).
* :mod:`repro.accelerators` -- the DPNN, Stripes and DStripes baselines.
* :mod:`repro.nn` -- the layer IR, reference inference and network zoo.
* :mod:`repro.quant` -- fixed point, bit-serial ops and precision profiles.
* :mod:`repro.memory` -- SRAM/eDRAM/LPDDR4 models and bit-interleaved layouts.
* :mod:`repro.energy` -- 65 nm technology, area and power models.
* :mod:`repro.sim` -- results, metrics, the network runner and the
  declarative job pipeline (:mod:`repro.sim.jobs`).
* :mod:`repro.workloads` -- synthetic tensor generators.
* :mod:`repro.experiments` -- one harness per paper table/figure.

Quick start::

    from repro import Loom, DPNN, build_network, get_paper_profile, run_network

    net = build_network("alexnet")
    net.attach_profile(get_paper_profile("alexnet", "100%"))
    loom, dpnn = Loom(), DPNN()
    speedup = (run_network(dpnn, net).total_cycles()
               / run_network(loom, net).total_cycles())
"""

from repro.accelerators import DPNN, DStripes, Stripes, AcceleratorConfig
from repro.core import Loom, LoomGeometry, DynamicPrecisionModel
from repro.nn import Network, build_network, available_networks
from repro.quant import get_paper_profile, paper_networks, NetworkPrecisionProfile
from repro.sim import (
    run_network,
    AcceleratorRunner,
    compare,
    geomean,
    AcceleratorSpec,
    JobExecutor,
    NetworkSpec,
    ResultCache,
    SimJob,
)

__version__ = "1.0.0"

__all__ = [
    "DPNN",
    "Stripes",
    "DStripes",
    "AcceleratorConfig",
    "Loom",
    "LoomGeometry",
    "DynamicPrecisionModel",
    "Network",
    "build_network",
    "available_networks",
    "get_paper_profile",
    "paper_networks",
    "NetworkPrecisionProfile",
    "run_network",
    "AcceleratorRunner",
    "compare",
    "geomean",
    "AcceleratorSpec",
    "JobExecutor",
    "NetworkSpec",
    "ResultCache",
    "SimJob",
    "__version__",
]
