"""``repro.serve``: a batching simulation service with a persistent store.

Every ``loom-repro`` subcommand is a one-shot batch process: it pays
interpreter start, imports, profiled-network construction and cache warm-up
on every invocation, and the ``--cache-dir`` JSON store cannot be shared
safely between concurrent clients.  This package keeps those ingredients
*hot* in one long-running process:

* :class:`~repro.serve.store.SQLiteResultStore` -- a
  :class:`~repro.sim.jobs.CacheBackend` holding every simulated result in a
  single WAL-mode SQLite database: concurrent readers, schema versioning,
  and an optional LRU entry bound.
* :class:`~repro.serve.service.SimulationService` -- a threaded HTTP JSON
  API (``POST /jobs``, ``GET /jobs/<key>``, ``POST /explore``,
  ``GET /networks``, ``GET /healthz``, ``GET /stats``) with request
  coalescing (N concurrent identical submissions simulate once), a bounded
  in-flight queue with 429 + ``Retry-After`` backpressure, and graceful
  shutdown.  Started by ``loom-repro serve``.
* :class:`~repro.serve.client.ServeClient` -- a dependency-free client
  (``loom-repro submit`` / ``loom-repro stats --remote``).
* :class:`~repro.serve.remote.RemoteExecutor` -- a
  :class:`~repro.sim.jobs.JobExecutor`-shaped facade so design-space sweeps
  (``loom-repro explore --remote URL``) execute against the shared warm
  store.

Quick tour::

    from repro.serve import ServeClient, SimulationService

    with SimulationService() as service:          # port 0 = OS-assigned
        client = ServeClient(service.url)
        done = client.submit(network="alexnet", accelerator="loom")
        assert done.result.total_cycles() > 0

The served results are **bit-identical** to in-process
:func:`~repro.sim.jobs.execute_job` runs -- the same field-for-field
equality the engine validator enforces -- and a job's wire form is the same
design-point parameter namespace as ``loom-repro explore`` axes.
"""

from repro.serve.client import ServeClient, ServeError, SubmittedJob
from repro.serve.core import Backpressure, ServiceCore, ServiceStats
from repro.serve.remote import RemoteExecutor
from repro.serve.service import SimulationService
from repro.serve.store import SQLiteResultStore

__all__ = [
    "Backpressure",
    "RemoteExecutor",
    "SQLiteResultStore",
    "ServeClient",
    "ServeError",
    "ServiceCore",
    "ServiceStats",
    "SimulationService",
    "SubmittedJob",
]
