"""SQLite-backed simulation result store (a :class:`CacheBackend`).

The ``--cache-dir`` JSON store is fine for one process at a time, but the
service needs a result store that many threads *and* many client processes
can share safely.  :class:`SQLiteResultStore` keeps every result in one
SQLite database:

* **WAL mode** -- readers never block the (single) writer and vice versa, so
  a warm ``loom-repro serve`` process can answer lookups while a store is in
  flight, and several CLI invocations pointed at the same database
  (``--store``) coexist without corrupting each other.
* **Schema versioning** -- the database records its schema version in
  ``PRAGMA user_version``; opening a store written by an incompatible
  version wipes and recreates it (cache entries are always recomputable, so
  a version bump costs re-simulation, never an error).  A database file that
  is not SQLite at all is likewise replaced.
* **LRU size bound** -- an optional ``max_entries`` cap: stores beyond the
  bound evict the least-recently-*used* entries (loads refresh recency), so
  a long-running service's store converges on its hot set instead of growing
  forever.

Payload rows carry the same ``format`` tag as the JSON backend; a row whose
payload does not parse or whose format/key mismatch is deleted, counted in
``invalid_entries`` and treated as a miss.

All operations are serialised behind one internal lock (SQLite connections
are not thread-safe by themselves); cross-process serialisation is SQLite's
own locking with a generous busy timeout.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro.sim.jobs.cache import CacheBackend, _FORMAT
from repro.sim.results import NetworkResult

__all__ = ["SQLiteResultStore", "SCHEMA_VERSION"]

#: Database schema version (``PRAGMA user_version``); bump on layout changes.
SCHEMA_VERSION = 1

_CREATE_RESULTS = """
CREATE TABLE IF NOT EXISTS results (
    key          TEXT PRIMARY KEY,
    format       INTEGER NOT NULL,
    spec         TEXT,
    result       TEXT NOT NULL,
    created_at   REAL NOT NULL,
    last_used_at REAL NOT NULL,
    hits         INTEGER NOT NULL DEFAULT 0
)
"""

_CREATE_LRU_INDEX = """
CREATE INDEX IF NOT EXISTS results_last_used ON results (last_used_at)
"""


class SQLiteResultStore(CacheBackend):
    """Concurrent-access persistent result store in one SQLite database."""

    name = "sqlite store"

    def __init__(self, path: os.PathLike,
                 max_entries: Optional[int] = None,
                 timeout_s: float = 30.0) -> None:
        super().__init__()
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 (or None for unbounded), "
                f"got {max_entries}"
            )
        self.path = Path(path).expanduser()
        self.max_entries = max_entries
        self.timeout_s = timeout_s
        #: Times the store was wiped for a schema/file-format mismatch.
        self.schema_resets = 0
        #: LRU evictions performed by the ``max_entries`` bound.
        self.evictions = 0
        self._lock = threading.RLock()
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = self._open()

    # -- connection / schema -------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=self.timeout_s,
                               check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        # The connect timeout only guards the initial open; busy_timeout
        # makes every later statement wait out a cross-process writer lock
        # instead of failing with "database is locked" -- with one store
        # per cluster shard plus CLI invocations sharing it, brief write
        # overlap is normal operation, not an error.
        conn.execute(f"PRAGMA busy_timeout = {int(self.timeout_s * 1000)}")
        return conn

    def _open(self) -> sqlite3.Connection:
        conn = None
        try:
            conn = self._connect()
            self._ensure_schema(conn)
            return conn
        except sqlite3.OperationalError:
            # Transient ("database is locked", disk I/O, unopenable path):
            # NEVER treat as corruption -- another process may be using a
            # perfectly valid store.  Surface the error to the caller.
            if conn is not None:
                try:
                    conn.close()
                except sqlite3.Error:
                    pass
            raise
        except sqlite3.DatabaseError:
            # Genuinely not a SQLite database (bad header, malformed image):
            # a cache is always recomputable, so replace the file.
            if conn is not None:
                try:
                    conn.close()
                except sqlite3.Error:
                    pass
            self.schema_resets += 1
            self.path.unlink(missing_ok=True)
            conn = self._connect()
            self._ensure_schema(conn)
            return conn

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        (version,) = conn.execute("PRAGMA user_version").fetchone()
        if version not in (0, SCHEMA_VERSION):
            # Written by an incompatible schema: wipe and recreate.
            self.schema_resets += 1
            conn.execute("DROP TABLE IF EXISTS results")
        with conn:
            conn.execute(_CREATE_RESULTS)
            conn.execute(_CREATE_LRU_INDEX)
            conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    # -- CacheBackend protocol -----------------------------------------------

    def load(self, key: str) -> Optional[NetworkResult]:
        with self._lock:
            row = self._conn.execute(
                "SELECT format, result FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                return None
            row_format, payload = row
            try:
                if row_format != _FORMAT:
                    raise ValueError("row format mismatch")
                result = NetworkResult.from_dict(json.loads(payload))
            except (ValueError, KeyError, TypeError):
                # Damaged row: drop it, count it, recompute upstream.
                self.invalid_entries += 1
                with self._conn:
                    self._conn.execute(
                        "DELETE FROM results WHERE key = ?", (key,))
                return None
            # The hit counter always moves (it feeds ``lifetime_hits`` in
            # /stats and inspect(), bound or no bound); the LRU recency
            # touch only matters when ``max_entries`` can actually evict.
            with self._conn:
                if self.max_entries is not None:
                    self._conn.execute(
                        "UPDATE results SET last_used_at = ?, hits = hits + 1 "
                        "WHERE key = ?",
                        (time.time(), key),
                    )
                else:
                    self._conn.execute(
                        "UPDATE results SET hits = hits + 1 WHERE key = ?",
                        (key,),
                    )
            return result

    def store(self, key: str, result: NetworkResult,
              spec: Optional[dict] = None) -> None:
        now = time.time()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, format, spec, result, created_at, last_used_at, hits) "
                "VALUES (?, ?, ?, ?, ?, ?, 0)",
                (key, _FORMAT,
                 json.dumps(spec) if spec is not None else None,
                 json.dumps(result.to_dict()), now, now),
            )
            if self.max_entries is not None:
                (count,) = self._conn.execute(
                    "SELECT COUNT(*) FROM results").fetchone()
                excess = count - self.max_entries
                if excess > 0:
                    cursor = self._conn.execute(
                        "DELETE FROM results WHERE key IN ("
                        "  SELECT key FROM results "
                        "  ORDER BY last_used_at ASC, rowid ASC LIMIT ?)",
                        (excess,),
                    )
                    self.evictions += cursor.rowcount

    def contains(self, key: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)).fetchone()
            return row is not None

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()
            return count

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- introspection -------------------------------------------------------

    def describe(self) -> str:
        return f"{self.name} ({self.path})"

    @classmethod
    def inspect(cls, path: os.PathLike,
                lock_retries: int = 5,
                lock_retry_delay_s: float = 0.1) -> Dict[str, object]:
        """Read-only statistics for a store database.

        Unlike constructing a store (which *repairs* incompatible databases
        by wiping them), inspection never writes: an incompatible or foreign
        file is reported, not destroyed.  Raises ``ValueError`` when ``path``
        is not a SQLite database at all.

        Inspecting a store a live service is writing to can momentarily hit
        SQLite's writer lock; those attempts are retried (up to
        ``lock_retries`` times, ``lock_retry_delay_s`` apart) and the count
        is surfaced as ``lock_retries`` in the payload -- a non-zero value
        is itself a useful signal that the store is under write contention.
        """
        path = Path(path).expanduser()
        retries = 0
        while True:
            conn = None
            try:
                conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
                (version,) = conn.execute("PRAGMA user_version").fetchone()
                payload: Dict[str, object] = {
                    "backend": "sqlite",
                    "path": str(path),
                    "schema_version": version,
                    "compatible": version == SCHEMA_VERSION,
                    "size_bytes": path.stat().st_size,
                    "lock_retries": retries,
                }
                if version == SCHEMA_VERSION:
                    (payload["entries"],) = conn.execute(
                        "SELECT COUNT(*) FROM results").fetchone()
                    (payload["lifetime_hits"],) = conn.execute(
                        "SELECT COALESCE(SUM(hits), 0) FROM results"
                    ).fetchone()
                return payload
            except sqlite3.OperationalError as error:
                locked = "locked" in str(error) or "busy" in str(error)
                if locked and retries < lock_retries:
                    retries += 1
                    time.sleep(lock_retry_delay_s)
                    continue
                raise ValueError(f"{path} is not a result-store database: "
                                 f"{error}") from None
            except sqlite3.Error as error:
                raise ValueError(f"{path} is not a result-store database: "
                                 f"{error}") from None
            finally:
                if conn is not None:
                    conn.close()

    def stats_dict(self) -> Dict[str, object]:
        """Store-level counters (the service's /stats ``store`` section)."""
        with self._lock:
            (entries,) = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()
            (total_hits,) = self._conn.execute(
                "SELECT COALESCE(SUM(hits), 0) FROM results").fetchone()
        try:
            size_bytes = self.path.stat().st_size
        except OSError:
            size_bytes = 0
        return {
            "backend": "sqlite",
            "path": str(self.path),
            "schema_version": SCHEMA_VERSION,
            "entries": entries,
            "max_entries": self.max_entries,
            "size_bytes": size_bytes,
            "lifetime_hits": total_hits,
            "evictions": self.evictions,
            "invalid_entries": self.invalid_entries,
            "schema_resets": self.schema_resets,
        }
