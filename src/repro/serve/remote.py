"""Execute :class:`~repro.sim.jobs.SimJob` batches through a remote service.

:class:`RemoteExecutor` is a drop-in stand-in for
:class:`~repro.sim.jobs.JobExecutor` wherever only the ``run(jobs)``
contract matters -- in particular :class:`repro.explore.engine.
PointEvaluator`, which is how ``loom-repro explore --remote URL`` runs a
whole design-space sweep against a warm server: every sweep, from every
client, lands in (and is answered from) the *same* persistent store, so the
second user's exploration starts where the first one's left off.

Jobs cross the wire as design-point mappings
(:func:`repro.explore.space.job_to_point`), whose content keys provably
round-trip; results come back as full
:class:`~repro.sim.results.NetworkResult` payloads, bit-identical to an
in-process run.  ``stats`` mirrors :class:`~repro.sim.jobs.ExecutorStats`
from the client's perspective: a server-side store/coalescing answer counts
as a cache hit here, because this process never simulated anything.
"""

from __future__ import annotations

import random
import time
from typing import Iterable, List, Optional, Union

from repro.obs.trace import get_tracer
from repro.serve.client import ServeClient, ServeError, compute_backoff
from repro.sim.jobs import ExecutorStats
from repro.sim.results import NetworkResult

__all__ = ["RemoteExecutor"]


class RemoteExecutor:
    """JobExecutor-shaped facade that submits batches to a serve endpoint.

    429 backpressure responses -- and 503 transport failures (connection
    refused while a shard restarts, surfaced as ``ServeError(503)`` by the
    client) -- are retried with capped exponential backoff plus jitter
    (:func:`~repro.serve.client.compute_backoff`), honouring the server's
    ``Retry-After`` hint as a floor, up to ``max_retries`` per batch -- so
    a sweep run against a busy (or briefly restarting) server queues
    politely instead of failing, and a crowd of refused clients does not
    retry in lockstep.

    With ``stream=True`` batches go through
    :meth:`ServeClient.submit_points_stream`, consuming results as the
    server resolves them (NDJSON against a cluster coordinator; plain JSON
    servers degrade transparently).
    """

    def __init__(self, client: Union[ServeClient, str],
                 batch_size: int = 64, max_retries: int = 30,
                 stream: bool = False) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.client = (ServeClient(client) if isinstance(client, str)
                       else client)
        self.batch_size = batch_size
        self.max_retries = max_retries
        self.stream = stream
        self.stats = ExecutorStats()
        #: Times a batch was refused with 429 and retried.
        self.backpressure_retries = 0
        #: Times a batch hit a 503 transport failure and was retried.
        self.transport_retries = 0
        #: The executor protocol executors expose; a remote executor holds no
        #: local result cache (the server's store is the cache).
        self.cache = None
        # Injectable for deterministic tests.
        self._sleep = time.sleep
        self._rng: random.Random = random.Random()

    def _submit_with_retry(self, chunk):
        submit = (self.client.submit_points_stream if self.stream
                  else self.client.submit_points)
        for attempt in range(self.max_retries + 1):
            try:
                return submit(chunk)
            except ServeError as error:
                if error.status not in (429, 503) \
                        or attempt == self.max_retries:
                    raise
                if error.status == 429:
                    self.backpressure_retries += 1
                else:
                    self.transport_retries += 1
                self._sleep(compute_backoff(
                    attempt, retry_after_s=error.retry_after_s,
                    rng=self._rng))

    def run(self, jobs: Iterable[object],
            engine: Optional[str] = None) -> List[NetworkResult]:
        """Submit ``jobs`` to the server; results in submission order.

        ``engine`` is accepted for executor-protocol parity and ignored:
        the server executes with its own engine setting, and every engine
        is bit-identical by contract, so results are unaffected.
        """
        from repro.explore.space import job_to_point

        jobs = list(jobs)
        points = [job_to_point(job) for job in jobs]
        self.stats.submitted += len(jobs)
        results: List[NetworkResult] = []
        tracer = get_tracer()
        with tracer.span("remote.run", jobs=len(jobs),
                         endpoint=self.client.base_url):
            for start in range(0, len(points), self.batch_size):
                chunk = points[start:start + self.batch_size]
                # One span per wire batch; the ServeClient forwards this
                # context as a traceparent header, so the server's request
                # span becomes this span's child.
                with tracer.span("remote.submit", points=len(chunk)):
                    entries = self._submit_with_retry(chunk)
                for entry in entries:
                    if entry.status == "executed":
                        self.stats.record_execution(entry.key)
                    else:  # "cached"/"coalesced": the server reused a result
                        self.stats.cache_hits += 1
                    results.append(entry.result)
        return results

    def close(self) -> None:
        """Nothing to release locally; present for executor-protocol parity."""

    def __enter__(self) -> "RemoteExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
