"""Threaded HTTP JSON simulation service with request coalescing.

:class:`SimulationService` wraps one shared :class:`~repro.sim.jobs.
JobExecutor` (backed by a persistent :class:`~repro.serve.store.
SQLiteResultStore` by default) behind a small HTTP API, so the expensive
per-invocation costs -- interpreter start, imports, profiled-network
construction, cache warm-up -- are paid once and amortised over every
subsequent request:

========  =============  ====================================================
method    path           behaviour
========  =============  ====================================================
POST      /jobs          simulate one point (or ``{"points": [...]}`` batch);
                         blocks until the result is ready
GET       /jobs/<key>    look a finished result up by content key
POST      /explore       run a design-space sweep against the warm store
GET       /networks      the zoo with per-kind layer counts
GET       /healthz       liveness probe
GET       /stats         service / executor / cache / store counters
POST      /shutdown      graceful stop (finishes in-flight work first)
========  =============  ====================================================

The submission semantics -- coalescing (N concurrent submissions of one key
execute once), bounded-admission 429 backpressure, the warm-store fast path
and graceful drain -- live in :class:`~repro.serve.core.ServiceCore`, which
this class fronts with a :class:`ThreadingHTTPServer`.  The cluster's
workers (:mod:`repro.cluster.worker`) front the *same* core with an asyncio
server, so a shard answers exactly like this single-box service.

The wire format for a job is a design-*point* mapping -- the same parameter
namespace as ``loom-repro explore`` axes (``network`` / ``accuracy`` /
``accelerator`` / every ``AcceleratorConfig`` knob), canonicalised by
:func:`repro.explore.space.canonical_point`.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import __version__
from repro.obs import MetricsRegistry, get_logger, get_tracer
from repro.serve.core import (  # noqa: F401 - _Inflight/_Submitted re-exported
    Backpressure,
    ServiceCore,
    ServiceStats,
    _Inflight,
    _Submitted,
)
from repro.sim.jobs import JobExecutor, ResultCache
from repro.sim.results import NetworkResult

__all__ = ["Backpressure", "ServiceStats", "SimulationService"]

_log = get_logger("serve")

#: Largest request body the service accepts (a sweep spec is tiny; anything
#: bigger than this is a client bug, not a workload).
_MAX_BODY_BYTES = 4 * 1024 * 1024


class SimulationService:
    """The batching simulation service behind ``loom-repro serve``.

    Parameters
    ----------
    executor:
        The shared :class:`JobExecutor` (and, through it, the result cache /
        persistent store) every request executes against.  The service owns
        it: ``stop()`` closes it.
    host / port:
        Bind address; ``port=0`` asks the OS for a free port (the bound
        port is available as ``service.port`` after ``start()``).
    queue_limit:
        Bound on concurrently admitted execution batches before submissions
        are refused with 429 (one batch = one unit, however many jobs it
        carries; coalesced duplicates and store answers never count).
    retry_after_s:
        The ``Retry-After`` hint sent with 429 responses.
    wait_timeout_s:
        How long a coalesced waiter polls an owner's execution before
        giving up (a safety net; owners always publish, even on error).
    engine:
        Simulation engine for the cache-miss sets the service executes
        (default ``"batched"``: each owner batch -- and each /explore
        round -- runs as whole design groups through
        :func:`repro.sim.batched.simulate_jobs_batched`, falling back per
        job for designs without a vector kernel).  ``None`` follows the
        executor's own setting.  All engines are bit-identical, so served
        results are unaffected by the choice.
    """

    def __init__(
        self,
        executor: Optional[JobExecutor] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 8,
        retry_after_s: int = 1,
        wait_timeout_s: float = 600.0,
        engine: Optional[str] = "batched",
    ) -> None:
        self.core = ServiceCore(
            executor=executor if executor is not None else JobExecutor(
                cache=ResultCache(max_memory_entries=512)),
            queue_limit=queue_limit,
            retry_after_s=retry_after_s,
            wait_timeout_s=wait_timeout_s,
            engine=engine,
        )
        self.host = host
        self.port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._stop_requested = threading.Event()
        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "loom_serve_requests_total",
            "HTTP requests handled, by path template and status code.",
            labelnames=("path", "status"))
        self._request_seconds = self.metrics.histogram(
            "loom_serve_request_seconds",
            "End-to-end HTTP request latency by path template.",
            labelnames=("path",))
        phase_histogram = self.metrics.histogram(
            "loom_executor_phase_seconds",
            "Executor wall time per phase (cache_lookup, layer_table_build, "
            "simulate, transport_scatter).",
            labelnames=("phase",))
        self.core.executor.phase_observer = (
            lambda phase, seconds: phase_histogram.observe(seconds,
                                                           phase=phase))
        self.metrics.gauge(
            "loom_serve_pending_batches",
            "Execution batches currently admitted against the queue limit.",
            collect=lambda: self.core._pending_batches)
        self.metrics.gauge(
            "loom_serve_inflight_keys",
            "Distinct job keys currently executing or being awaited.",
            collect=lambda: len(self.core._inflight))
        self.metrics.gauge(
            "loom_serve_uptime_seconds",
            "Seconds since the service started serving.",
            collect=lambda: (time.time() - self.core.started_at
                             if self.core.started_at is not None else 0.0))

    # -- core delegation (the HTTP-independent submission path) ---------------
    #
    # Everything below simply fronts the ServiceCore, preserving the
    # historical SimulationService surface (tests and the cluster's
    # differential harness drive it directly, without HTTP).

    @property
    def executor(self) -> JobExecutor:
        return self.core.executor

    @property
    def cache(self) -> Optional[ResultCache]:
        return self.core.cache

    @property
    def stats(self) -> ServiceStats:
        return self.core.stats

    @property
    def queue_limit(self) -> int:
        return self.core.queue_limit

    @property
    def retry_after_s(self) -> int:
        return self.core.retry_after_s

    @property
    def engine(self) -> Optional[str]:
        return self.core.engine

    @property
    def started_at(self) -> Optional[float]:
        return self.core.started_at

    @property
    def _inflight(self) -> Dict[str, _Inflight]:
        return self.core._inflight

    @property
    def _pending_batches(self) -> int:
        return self.core._pending_batches

    @_pending_batches.setter
    def _pending_batches(self, value: int) -> None:
        self.core._pending_batches = value

    def _bump(self, counter: str, amount: int = 1) -> None:
        self.core._bump(counter, amount)

    def submit_points(self, raw_points: Sequence[Mapping[str, object]],
                      timeout_s: Optional[float] = None) -> List[_Submitted]:
        return self.core.submit_points(raw_points, timeout_s=timeout_s)

    def lookup(self, key: str) -> Tuple[str, Optional[NetworkResult]]:
        return self.core.lookup(key)

    def run_explore(self, request: Mapping[str, object]) -> Dict[str, object]:
        return self.core.run_explore(request)

    def stats_dict(self) -> Dict[str, object]:
        return self.core.stats_dict()

    # -- lifecycle ------------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        """Bind and start serving in a background thread; returns the URL."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = _ServiceServer((self.host, self.port), _Handler, self)
        self.port = self._server.server_address[1]
        self.core.started_at = time.time()
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="loom-serve",
            daemon=True,
        )
        self._server_thread.start()
        _log.info("serve.started", url=self.url, engine=self.engine,
                  queue_limit=self.queue_limit, version=__version__)
        return self.url

    def request_stop(self) -> None:
        """Ask the serve loop to stop (safe to call from handler threads)."""
        self._stop_requested.set()

    def wait_until_stopped(self, poll_s: float = 0.5) -> None:
        """Block until ``request_stop`` is called (the CLI's serve loop)."""
        while not self._stop_requested.wait(poll_s):
            pass

    def stop(self, drain_timeout_s: float = 30.0) -> None:
        """Graceful shutdown: drain in-flight work, then release resources.

        ``server.shutdown()`` only stops *accepting* connections -- handler
        threads are daemons and are not joined -- so the executor and store
        must stay open until every admitted batch has published its result;
        otherwise a request racing the shutdown would hit a closed SQLite
        connection and lose its computed result.
        """
        self._stop_requested.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=10.0)
            self._server = None
            self._server_thread = None
            _log.info("serve.stopped", url=self.url)
        self.core.close(drain_timeout_s)

    def __enter__(self) -> "SimulationService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that hands its handlers the service instance."""

    daemon_threads = True

    def __init__(self, address, handler, service: SimulationService) -> None:
        super().__init__(address, handler)
        self.service = service


def _metric_path(path: str) -> str:
    """Low-cardinality path label: keys collapse, junk paths collapse."""
    if path.startswith("/jobs/"):
        return "/jobs/<key>"
    if path in ("/", "/healthz", "/stats", "/networks", "/metrics",
                "/trace", "/jobs", "/explore", "/shutdown"):
        return path
    return "<other>"


class _Handler(BaseHTTPRequestHandler):
    server: _ServiceServer
    #: Human-readable server tag (no version leak in error pages).
    server_version = "loom-serve"
    sys_version = ""
    protocol_version = "HTTP/1.1"
    #: Correlation id for the in-flight request (span id when tracing is
    #: on); echoed as ``X-Request-Id`` on every response and in error
    #: bodies so a 429/500 can be matched to its trace and log lines.
    _request_id = ""
    _status = 0

    # -- plumbing -------------------------------------------------------------

    @property
    def service(self) -> SimulationService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # Per-request lines go through the structured logger at debug, so
        # they are silent at the default level but available under
        # --log-level debug (with trace correlation).
        _log.debug("http.access", client=self.address_string(),
                   line=format % args, request_id=self._request_id)

    @contextlib.contextmanager
    def _request_scope(self, method: str):
        """Per-request span, correlation id and metric accounting."""
        self.service._bump("requests")
        path = self.path.rstrip("/") or "/"
        label = _metric_path(path)
        tracer = get_tracer()
        self._status = 0
        self._request_id = os.urandom(8).hex()
        started = time.perf_counter()
        try:
            with tracer.remote_parent(self.headers.get("traceparent")):
                with tracer.span(f"serve.{method} {label}", method=method,
                                 path=path) as span:
                    if span is not None:
                        self._request_id = span.span_id
                    yield path
                    if span is not None and self._status:
                        span.set_attr("status", self._status)
        finally:
            status = str(self._status or 500)
            self.service._requests_total.inc(path=label, status=status)
            self.service._request_seconds.observe(
                time.perf_counter() - started, path=label)

    def _send_json(self, status: int, payload: Dict[str, object],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header("X-Request-Id", self._request_id)
        self.end_headers()
        self.wfile.write(body)
        self._status = status

    def _send_error(self, status: int, message: str,
                    headers: Optional[Dict[str, str]] = None) -> None:
        self.service._bump("errors")
        if status >= 500:
            _log.error("http.error", status=status, path=self.path,
                       message=message, request_id=self._request_id)
        payload = {"error": message}
        if self._request_id:
            payload["request_id"] = self._request_id
        self._send_json(status, payload, headers=headers)

    def _drain_body(self) -> bytes:
        """Read the request body up front.

        Persistent (HTTP/1.1) connections require the body to be consumed
        before *any* response -- including errors -- or the unread bytes get
        parsed as the next request on the connection.  Oversized bodies are
        not drained; the connection is closed instead.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self.close_connection = True
            raise ValueError(
                f"request body too large ({length} bytes, "
                f"limit {_MAX_BODY_BYTES})"
            )
        return self.rfile.read(length) if length else b""

    @staticmethod
    def _parse_body(raw: bytes) -> Dict[str, object]:
        if not raw:
            raise ValueError("request body must be a JSON object")
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        with self._request_scope("GET") as path:
            try:
                # keep-alive safety for GETs sent with bodies
                self._drain_body()
                if path == "/healthz":
                    self._send_json(200, {
                        "ok": True,
                        "version": __version__,
                        "uptime_s": time.time() - (self.service.started_at or
                                                   time.time()),
                    })
                elif path == "/stats":
                    payload = self.service.stats_dict()
                    payload["version"] = __version__
                    self._send_json(200, payload)
                elif path == "/metrics":
                    self._send_text(
                        200, self.service.metrics.render(),
                        "text/plain; version=0.0.4; charset=utf-8")
                elif path == "/trace":
                    recorder = get_tracer().recorder
                    self._send_json(200, {
                        "service": get_tracer().service,
                        "spans": [span.to_dict()
                                  for span in recorder.spans()],
                    })
                elif path == "/networks":
                    self._send_json(200, {"networks": _networks_payload()})
                elif path.startswith("/jobs/"):
                    key = path[len("/jobs/"):]
                    status, result = self.service.lookup(key)
                    if status == "done":
                        self._send_json(200, {"key": key, "status": "done",
                                              "result": result.to_dict()})
                    elif status == "pending":
                        self._send_json(202, {"key": key,
                                              "status": "pending"})
                    else:
                        self._send_error(404, f"no result for key {key!r}")
                else:
                    self._send_error(404, f"unknown path {self.path!r}")
            except ValueError as error:
                self._send_error(400, str(error))
            except Exception as error:  # pragma: no cover - defensive
                self._send_error(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        with self._request_scope("POST") as path:
            try:
                # Drain before routing so every response -- 404s included --
                # leaves the persistent connection in a parseable state.
                raw = self._drain_body()
                if path == "/jobs":
                    self._handle_jobs(self._parse_body(raw))
                elif path == "/explore":
                    self._send_json(
                        200, self.service.run_explore(self._parse_body(raw)))
                elif path == "/shutdown":
                    self._send_json(200, {"ok": True, "stopping": True})
                    # Stop the serve loop from outside this handler thread:
                    # the owning CLI loop (or .stop() caller) tears the
                    # server down.
                    self.service.request_stop()
                    threading.Thread(target=self.server.shutdown,
                                     daemon=True).start()
                else:
                    self._send_error(404, f"unknown path {self.path!r}")
            except Backpressure as bp:
                self._send_error(
                    429, str(bp),
                    headers={"Retry-After": str(bp.retry_after_s)})
            except (ValueError, KeyError, TypeError) as error:
                self._send_error(400, f"{type(error).__name__}: {error}")
            except TimeoutError as error:
                self._send_error(504, str(error))
            except Exception as error:
                self._send_error(500, f"{type(error).__name__}: {error}")

    def _handle_jobs(self, payload: Dict[str, object]) -> None:
        if "points" in payload:
            points = payload["points"]
            if not isinstance(points, list) or not points:
                raise ValueError("'points' must be a non-empty JSON array")
            submitted = self.service.submit_points(points)
            self._send_json(200, {
                "results": [entry.to_dict() for entry in submitted],
            })
            return
        point = payload.get("point", payload)
        if not isinstance(point, dict) or not point:
            raise ValueError(
                "POST /jobs expects a point object, {'point': {...}} or "
                "{'points': [...]}"
            )
        (submitted,) = self.service.submit_points([point])
        self._send_json(200, submitted.to_dict())


def _networks_payload() -> List[Dict[str, object]]:
    from repro.nn import available_networks
    from repro.sim.jobs import network_kind_counts

    payload = []
    for name in available_networks():
        kinds = network_kind_counts(name)
        payload.append({"name": name, **kinds,
                        "total": sum(kinds.values())})
    return payload
