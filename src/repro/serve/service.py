"""Threaded HTTP JSON simulation service with request coalescing.

:class:`SimulationService` wraps one shared :class:`~repro.sim.jobs.
JobExecutor` (backed by a persistent :class:`~repro.serve.store.
SQLiteResultStore` by default) behind a small HTTP API, so the expensive
per-invocation costs -- interpreter start, imports, profiled-network
construction, cache warm-up -- are paid once and amortised over every
subsequent request:

========  =============  ====================================================
method    path           behaviour
========  =============  ====================================================
POST      /jobs          simulate one point (or ``{"points": [...]}`` batch);
                         blocks until the result is ready
GET       /jobs/<key>    look a finished result up by content key
POST      /explore       run a design-space sweep against the warm store
GET       /networks      the zoo with per-kind layer counts
GET       /healthz       liveness probe
GET       /stats         service / executor / cache / store counters
POST      /shutdown      graceful stop (finishes in-flight work first)
========  =============  ====================================================

**Coalescing.** N concurrent submissions of the same content key execute the
simulation exactly once: the first request becomes the *owner* and runs the
job; the rest subscribe to the owner's in-flight entry and are handed the
same result when it lands (``ExecutorStats.max_executions_per_key`` stays at
1, which the test suite asserts).

**Backpressure.** The number of concurrently *admitted* submissions that
need an execution (batches holding or waiting for the execution slot) is
bounded (``queue_limit``); a submission that would exceed the bound is
refused with HTTP 429 and a ``Retry-After`` header instead of queueing
unboundedly.  A batch counts as one unit regardless of how many jobs it
carries -- it becomes one executor batch -- so arbitrarily large sweeps
submit fine; coalesced waiters and store-answered submissions never count.

**Shutdown.** ``stop()`` (or ``POST /shutdown``) stops accepting new
connections, lets in-flight handlers finish, then closes the executor, its
worker pool and the store.

The wire format for a job is a design-*point* mapping -- the same parameter
namespace as ``loom-repro explore`` axes (``network`` / ``accuracy`` /
``accelerator`` / every ``AcceleratorConfig`` knob), canonicalised by
:func:`repro.explore.space.canonical_point`.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.explore.engine import explore
from repro.explore.search import resolve_strategy
from repro.explore.space import SweepSpec, canonical_point, point_to_job
from repro.sim.jobs import JobExecutor, ResultCache, job_key
from repro.sim.results import NetworkResult

__all__ = ["Backpressure", "ServiceStats", "SimulationService"]

#: Largest request body the service accepts (a sweep spec is tiny; anything
#: bigger than this is a client bug, not a workload).
_MAX_BODY_BYTES = 4 * 1024 * 1024


class Backpressure(Exception):
    """Raised when the in-flight job bound is reached (maps to HTTP 429)."""

    def __init__(self, pending: int, limit: int, retry_after_s: int) -> None:
        super().__init__(
            f"job queue is full ({pending} in flight, limit {limit}); "
            f"retry in {retry_after_s}s"
        )
        self.pending = pending
        self.limit = limit
        self.retry_after_s = retry_after_s


@dataclass
class ServiceStats:
    """Request-level counters (everything execution-level lives in the
    executor/cache stats the service also reports)."""

    requests: int = 0
    submitted_points: int = 0
    store_answers: int = 0
    coalesced: int = 0
    rejected: int = 0
    errors: int = 0
    explores: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "submitted_points": self.submitted_points,
            "store_answers": self.store_answers,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "explores": self.explores,
        }


class _Inflight:
    """One in-flight execution other submissions of the same key can join."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[NetworkResult] = None
        self.error: Optional[BaseException] = None


@dataclass
class _Submitted:
    """Resolution of one submitted point."""

    key: str
    status: str  # "cached", "executed" or "coalesced"
    result: NetworkResult

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "status": self.status,
            "result": self.result.to_dict(),
        }


class SimulationService:
    """The batching simulation service behind ``loom-repro serve``.

    Parameters
    ----------
    executor:
        The shared :class:`JobExecutor` (and, through it, the result cache /
        persistent store) every request executes against.  The service owns
        it: ``stop()`` closes it.
    host / port:
        Bind address; ``port=0`` asks the OS for a free port (the bound
        port is available as ``service.port`` after ``start()``).
    queue_limit:
        Bound on concurrently admitted execution batches before submissions
        are refused with 429 (one batch = one unit, however many jobs it
        carries; coalesced duplicates and store answers never count).
    retry_after_s:
        The ``Retry-After`` hint sent with 429 responses.
    wait_timeout_s:
        How long a coalesced waiter polls an owner's execution before
        giving up (a safety net; owners always publish, even on error).
    engine:
        Simulation engine for the cache-miss sets the service executes
        (default ``"batched"``: each owner batch -- and each /explore
        round -- runs as whole design groups through
        :func:`repro.sim.batched.simulate_jobs_batched`, falling back per
        job for designs without a vector kernel).  ``None`` follows the
        executor's own setting.  All engines are bit-identical, so served
        results are unaffected by the choice.
    """

    def __init__(
        self,
        executor: Optional[JobExecutor] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 8,
        retry_after_s: int = 1,
        wait_timeout_s: float = 600.0,
        engine: Optional[str] = "batched",
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.executor = executor if executor is not None else JobExecutor(
            cache=ResultCache(max_memory_entries=512))
        self.host = host
        self.port = port
        self.queue_limit = queue_limit
        self.retry_after_s = retry_after_s
        self.wait_timeout_s = wait_timeout_s
        if engine is not None:
            from repro.sim.fastpath import resolve_engine

            resolve_engine(engine)  # fail fast on unknown names
        self.engine = engine
        self.stats = ServiceStats()
        self.started_at: Optional[float] = None
        self._inflight: Dict[str, _Inflight] = {}
        self._pending_batches = 0
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._execute_lock = threading.Lock()
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._stop_requested = threading.Event()

    # -- core submission path (HTTP-independent, used by tests directly) -----

    @property
    def cache(self) -> Optional[ResultCache]:
        return self.executor.cache

    def _bump(self, counter: str, amount: int = 1) -> None:
        """Race-free ServiceStats increment (handlers run concurrently)."""
        with self._stats_lock:
            setattr(self.stats, counter,
                    getattr(self.stats, counter) + amount)

    @contextlib.contextmanager
    def _admit_batch(self):
        """Claim one execution-batch admission slot (429 when full).

        Both execution-bearing routes (/jobs owner batches and /explore
        sweeps) pass through this bound, so neither can queue unboundedly
        on the execution lock.
        """
        with self._lock:
            if self._pending_batches >= self.queue_limit:
                self._bump("rejected")
                raise Backpressure(
                    pending=self._pending_batches,
                    limit=self.queue_limit,
                    retry_after_s=self.retry_after_s,
                )
            self._pending_batches += 1
        try:
            yield
        finally:
            with self._lock:
                self._pending_batches -= 1

    def submit_points(self, raw_points: Sequence[Mapping[str, object]],
                      timeout_s: Optional[float] = None) -> List[_Submitted]:
        """Resolve a batch of raw point mappings into results.

        Point order is preserved.  Already-stored keys are answered from the
        cache (no lock, no admission needed); keys another request is
        currently executing are joined (coalesced); the rest are executed
        here as one executor batch -- which counts as *one* unit against the
        ``queue_limit`` admission bound, however many jobs it carries.
        Raises :class:`Backpressure` when the service already has
        ``queue_limit`` admitted batches, and ``ValueError`` for malformed
        points.
        """
        timeout_s = timeout_s if timeout_s is not None else self.wait_timeout_s
        entries: List[Tuple[object, str]] = []
        for raw in raw_points:
            if not isinstance(raw, Mapping):
                raise ValueError(
                    f"a job point must be a JSON object, got {type(raw).__name__}"
                )
            job = point_to_job(canonical_point(raw))
            entries.append((job, job_key(job)))

        statuses: Dict[str, str] = {}
        resolved: Dict[str, NetworkResult] = {}
        # Pass 1, no service lock: warm keys resolve straight from the
        # (internally locked) cache, so warm traffic never serialises behind
        # another request's admission or bookkeeping.  peek(), not get():
        # cold keys get their authoritative (counted) lookup inside
        # executor.run, so misses are not double-counted in /stats.
        for _, key in entries:
            if key in statuses:
                continue
            cached = self.cache.peek(key) if self.cache is not None else None
            if cached is not None:
                statuses[key] = "cached"
                resolved[key] = cached

        waits: Dict[str, _Inflight] = {}
        own: List[Tuple[object, str]] = []
        coalesced = 0
        if len(resolved) < len({key for _, key in entries}):
            with self._lock:
                for job, key in entries:
                    if key in statuses:
                        continue
                    inflight = self._inflight.get(key)
                    if inflight is not None:
                        statuses[key] = "coalesced"
                        waits[key] = inflight
                        coalesced += 1
                        continue
                    statuses[key] = "executed"
                    own.append((job, key))
                if own:
                    if self._pending_batches >= self.queue_limit:
                        self._bump("rejected")
                        raise Backpressure(
                            pending=self._pending_batches,
                            limit=self.queue_limit,
                            retry_after_s=self.retry_after_s,
                        )
                    self._pending_batches += 1
                    for _, key in own:
                        self._inflight[key] = _Inflight()
        # Admission succeeded: commit the request-level counters.
        self._bump("submitted_points", len(entries))
        self._bump("store_answers",
                   sum(1 for s in statuses.values() if s == "cached"))
        self._bump("coalesced", coalesced)

        if own:
            error: Optional[BaseException] = None
            results: List[NetworkResult] = []
            try:
                with self._execute_lock:
                    results = self.executor.run([job for job, _ in own],
                                                engine=self.engine)
            except BaseException as exc:  # always publish, even on error
                error = exc
            finally:
                with self._lock:
                    self._pending_batches -= 1
                    for index, (_, key) in enumerate(own):
                        inflight = self._inflight.pop(key)
                        if error is None:
                            inflight.result = results[index]
                            resolved[key] = results[index]
                        else:
                            inflight.error = error
                        inflight.event.set()
            if error is not None:
                raise error

        for key, inflight in waits.items():
            if not inflight.event.wait(timeout_s):
                raise TimeoutError(
                    f"timed out after {timeout_s}s waiting for in-flight "
                    f"job {key}"
                )
            if inflight.error is not None:
                raise RuntimeError(
                    f"coalesced job {key} failed in its owning request: "
                    f"{inflight.error}"
                )
            resolved[key] = inflight.result

        return [
            _Submitted(key=key, status=statuses[key], result=resolved[key])
            for _, key in entries
        ]

    def lookup(self, key: str) -> Tuple[str, Optional[NetworkResult]]:
        """Look a content key up: ('done', result), ('pending', None) or
        ('unknown', None)."""
        result = self.cache.peek(key) if self.cache is not None else None
        if result is not None:
            return "done", result
        with self._lock:
            if key in self._inflight:
                return "pending", None
        return "unknown", None

    def run_explore(self, request: Mapping[str, object]) -> Dict[str, object]:
        """Run one design-space sweep against the warm store.

        ``request`` is ``{"space": <SweepSpec dict>, "strategy": name,
        "samples": N, "seed": S, "objectives": [...], "baseline": kind}``
        with everything but ``space`` optional.
        """
        if "space" not in request:
            raise ValueError("explore request needs a 'space' sweep spec")
        unknown = set(request) - {"space", "strategy", "samples", "seed",
                                  "objectives", "baseline"}
        if unknown:
            raise ValueError(f"unknown explore request keys: {sorted(unknown)}")
        space = SweepSpec.from_dict(request["space"])
        strategy_name = request.get("strategy", "grid")
        options = {}
        if strategy_name == "random":
            options = {"samples": int(request.get("samples", 16)),
                       "seed": int(request.get("seed", 0))}
        elif strategy_name == "coordinate":
            options = {"seed": int(request.get("seed", 0))}
        strategy = resolve_strategy(strategy_name, **options)
        self._bump("explores")
        with self._admit_batch(), self._execute_lock:
            result = explore(
                space,
                strategy=strategy,
                objectives=request.get(
                    "objectives", ("speedup", "energy_efficiency", "area")),
                executor=self.executor,
                baseline=request.get("baseline", "dpnn"),
                engine=self.engine,
            )
        return result.to_dict()

    def stats_dict(self) -> Dict[str, object]:
        """Everything /stats reports, as plain data."""
        payload: Dict[str, object] = {
            "uptime_s": (time.time() - self.started_at
                         if self.started_at is not None else 0.0),
            "queue_limit": self.queue_limit,
            "pending_batches": self._pending_batches,
            "inflight": len(self._inflight),
            "service": self.stats.to_dict(),
            "executor": self.executor.stats.to_dict(),
        }
        if self.cache is not None:
            payload["cache"] = dict(self.cache.stats.to_dict(),
                                    memory_entries=len(self.cache))
            backend = self.cache.backend
            if backend is not None:
                payload["store"] = (
                    backend.stats_dict() if hasattr(backend, "stats_dict")
                    else {"backend": backend.describe(),
                          "entries": len(backend)}
                )
        return payload

    # -- lifecycle ------------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        """Bind and start serving in a background thread; returns the URL."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = _ServiceServer((self.host, self.port), _Handler, self)
        self.port = self._server.server_address[1]
        self.started_at = time.time()
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="loom-serve",
            daemon=True,
        )
        self._server_thread.start()
        return self.url

    def request_stop(self) -> None:
        """Ask the serve loop to stop (safe to call from handler threads)."""
        self._stop_requested.set()

    def wait_until_stopped(self, poll_s: float = 0.5) -> None:
        """Block until ``request_stop`` is called (the CLI's serve loop)."""
        while not self._stop_requested.wait(poll_s):
            pass

    def stop(self, drain_timeout_s: float = 30.0) -> None:
        """Graceful shutdown: drain in-flight work, then release resources.

        ``server.shutdown()`` only stops *accepting* connections -- handler
        threads are daemons and are not joined -- so the executor and store
        must stay open until every admitted batch has published its result;
        otherwise a request racing the shutdown would hit a closed SQLite
        connection and lose its computed result.
        """
        self._stop_requested.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=10.0)
            self._server = None
            self._server_thread = None
        deadline = time.time() + drain_timeout_s
        while time.time() < deadline:
            with self._lock:
                idle = self._pending_batches == 0 and not self._inflight
            if idle:
                break
            time.sleep(0.02)
        # The execute lock guarantees no executor.run (and therefore no
        # store write) is mid-flight when the resources close.
        with self._execute_lock:
            self.executor.close()
            if self.cache is not None:
                self.cache.close()

    def __enter__(self) -> "SimulationService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that hands its handlers the service instance."""

    daemon_threads = True

    def __init__(self, address, handler, service: SimulationService) -> None:
        super().__init__(address, handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: _ServiceServer
    #: Human-readable server tag (no version leak in error pages).
    server_version = "loom-serve"
    sys_version = ""
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------

    @property
    def service(self) -> SimulationService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the CLI's --verbose concern, not stderr spam

    def _send_json(self, status: int, payload: Dict[str, object],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str,
                    headers: Optional[Dict[str, str]] = None) -> None:
        self.service._bump("errors")
        self._send_json(status, {"error": message}, headers=headers)

    def _drain_body(self) -> bytes:
        """Read the request body up front.

        Persistent (HTTP/1.1) connections require the body to be consumed
        before *any* response -- including errors -- or the unread bytes get
        parsed as the next request on the connection.  Oversized bodies are
        not drained; the connection is closed instead.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self.close_connection = True
            raise ValueError(
                f"request body too large ({length} bytes, "
                f"limit {_MAX_BODY_BYTES})"
            )
        return self.rfile.read(length) if length else b""

    @staticmethod
    def _parse_body(raw: bytes) -> Dict[str, object]:
        if not raw:
            raise ValueError("request body must be a JSON object")
        payload = json.loads(raw.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self.service._bump("requests")
        path = self.path.rstrip("/") or "/"
        try:
            self._drain_body()  # keep-alive safety for GETs sent with bodies
            if path == "/healthz":
                self._send_json(200, {
                    "ok": True,
                    "uptime_s": time.time() - (self.service.started_at or
                                               time.time()),
                })
            elif path == "/stats":
                self._send_json(200, self.service.stats_dict())
            elif path == "/networks":
                self._send_json(200, {"networks": _networks_payload()})
            elif path.startswith("/jobs/"):
                key = path[len("/jobs/"):]
                status, result = self.service.lookup(key)
                if status == "done":
                    self._send_json(200, {"key": key, "status": "done",
                                          "result": result.to_dict()})
                elif status == "pending":
                    self._send_json(202, {"key": key, "status": "pending"})
                else:
                    self._send_error(404, f"no result for key {key!r}")
            else:
                self._send_error(404, f"unknown path {self.path!r}")
        except ValueError as error:
            self._send_error(400, str(error))
        except Exception as error:  # pragma: no cover - defensive
            self._send_error(500, f"{type(error).__name__}: {error}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self.service._bump("requests")
        path = self.path.rstrip("/")
        try:
            # Drain before routing so every response -- 404s included --
            # leaves the persistent connection in a parseable state.
            raw = self._drain_body()
            if path == "/jobs":
                self._handle_jobs(self._parse_body(raw))
            elif path == "/explore":
                self._send_json(
                    200, self.service.run_explore(self._parse_body(raw)))
            elif path == "/shutdown":
                self._send_json(200, {"ok": True, "stopping": True})
                # Stop the serve loop from outside this handler thread: the
                # owning CLI loop (or .stop() caller) tears the server down.
                self.service.request_stop()
                threading.Thread(target=self.server.shutdown,
                                 daemon=True).start()
            else:
                self._send_error(404, f"unknown path {self.path!r}")
        except Backpressure as bp:
            self._send_error(429, str(bp),
                             headers={"Retry-After": str(bp.retry_after_s)})
        except (ValueError, KeyError, TypeError) as error:
            self._send_error(400, f"{type(error).__name__}: {error}")
        except TimeoutError as error:
            self._send_error(504, str(error))
        except Exception as error:
            self._send_error(500, f"{type(error).__name__}: {error}")

    def _handle_jobs(self, payload: Dict[str, object]) -> None:
        if "points" in payload:
            points = payload["points"]
            if not isinstance(points, list) or not points:
                raise ValueError("'points' must be a non-empty JSON array")
            submitted = self.service.submit_points(points)
            self._send_json(200, {
                "results": [entry.to_dict() for entry in submitted],
            })
            return
        point = payload.get("point", payload)
        if not isinstance(point, dict) or not point:
            raise ValueError(
                "POST /jobs expects a point object, {'point': {...}} or "
                "{'points': [...]}"
            )
        (submitted,) = self.service.submit_points([point])
        self._send_json(200, submitted.to_dict())


def _networks_payload() -> List[Dict[str, object]]:
    from repro.nn import available_networks
    from repro.sim.jobs import network_kind_counts

    payload = []
    for name in available_networks():
        kinds = network_kind_counts(name)
        payload.append({"name": name, **kinds,
                        "total": sum(kinds.values())})
    return payload
