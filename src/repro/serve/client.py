"""Thin stdlib HTTP client for the ``loom-repro serve`` service.

:class:`ServeClient` speaks the JSON protocol of
:mod:`repro.serve.service` with nothing but ``urllib`` -- no dependencies,
so any Python process (another CLI invocation, a notebook, a CI smoke
script) can submit simulations to a warm server.  Server-side failures are
raised as :class:`ServeError` carrying the HTTP status and, for 429
backpressure responses, the ``Retry-After`` hint.
"""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.obs.trace import get_tracer
from repro.sim.results import NetworkResult

__all__ = ["ServeClient", "ServeError", "SubmittedJob", "compute_backoff"]

_BACKOFF_RNG = random.Random()


def compute_backoff(attempt: int, retry_after_s: Optional[float] = None,
                    base_s: float = 0.05, cap_s: float = 5.0,
                    rng: Optional[random.Random] = None) -> float:
    """Capped exponential backoff with jitter, honouring ``Retry-After``.

    The delay for retry ``attempt`` (0-based) is
    ``min(cap_s, base_s * 2**attempt)`` scaled by a jitter factor uniform in
    ``[0.5, 1.0]`` -- so a burst of clients refused together does not retry
    in lockstep.  A server-provided ``retry_after_s`` acts as a *floor*:
    the server knows how long its queue is, and retrying sooner than it
    asked just earns another refusal.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    delay = min(cap_s, base_s * (2.0 ** attempt))
    delay *= 0.5 + 0.5 * (rng or _BACKOFF_RNG).random()
    if retry_after_s is not None:
        delay = max(delay, float(retry_after_s))
    return delay


class ServeError(Exception):
    """An HTTP error response from the service.

    Also raised (with ``status=503``) for connection-level transport
    failures -- connection refused while a shard restarts, DNS hiccups --
    so retry loops built on :class:`ServeError` (the
    :class:`~repro.serve.remote.RemoteExecutor` backoff path) see them as
    retryable instead of crashing on a raw ``urllib.error.URLError``.
    """

    def __init__(self, status: int, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class SubmittedJob:
    """One submitted point's resolution, as the server reported it.

    ``status`` is ``"cached"`` (answered from the warm store),
    ``"executed"`` (this request ran the simulation) or ``"coalesced"``
    (another concurrent request ran it and this one shared the result).
    """

    key: str
    status: str
    result: NetworkResult


class ServeClient:
    """Client for one ``loom-repro serve`` endpoint."""

    def __init__(self, base_url: str, timeout_s: float = 600.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing -------------------------------------------------------------

    def _open(self, method: str, path: str, payload: Optional[dict] = None,
              accept: Optional[str] = None):
        """Issue one request and return the raw (streaming) response."""
        headers = {"Content-Type": "application/json"}
        if accept is not None:
            headers["Accept"] = accept
        # Propagate the caller's trace context so server-side spans link
        # into the same trace (one sweep -> one cross-process trace).
        get_tracer().inject_headers(headers)
        request = urllib.request.Request(
            self.base_url + path,
            data=(json.dumps(payload).encode("utf-8")
                  if payload is not None else None),
            headers=headers,
            method=method,
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout_s)
        except urllib.error.HTTPError:
            raise  # HTTP errors carry a response; callers map them.
        except urllib.error.URLError as error:
            # Connection-level failure (refused, reset, DNS): surface as a
            # retryable 503 so ServeError-based backoff loops engage.
            raise ServeError(
                503, f"connection to {self.base_url} failed: "
                     f"{getattr(error, 'reason', error)}") from error

    @staticmethod
    def _raise_serve_error(error: urllib.error.HTTPError) -> None:
        # float(), not int(): a proxy (or a future sub-second backpressure
        # hint) may send a fractional Retry-After; truncating it to int --
        # or dropping it -- makes clients retry sooner than asked.
        retry_after: Optional[float] = None
        header = error.headers.get("Retry-After")
        if header is not None:
            try:
                retry_after = float(header)
            except ValueError:
                retry_after = None
        try:
            message = json.loads(error.read().decode("utf-8"))["error"]
        except (ValueError, KeyError):
            message = error.reason
        raise ServeError(error.code, message,
                         retry_after_s=retry_after) from None

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        try:
            with self._open(method, path, payload) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            self._raise_serve_error(error)

    @staticmethod
    def _submitted(entry: Mapping[str, object]) -> SubmittedJob:
        return SubmittedJob(
            key=entry["key"],
            status=entry["status"],
            result=NetworkResult.from_dict(entry["result"]),
        )

    # -- API ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def networks(self) -> List[dict]:
        return self._request("GET", "/networks")["networks"]

    def trace(self) -> dict:
        """The server's recorded spans (``{"service": ..., "spans": [...]}``).

        Against a cluster coordinator the payload also merges every healthy
        worker's spans, so one fetch covers the whole cluster.
        """
        return self._request("GET", "/trace")

    def submit(self, point: Optional[Mapping[str, object]] = None,
               **params: object) -> SubmittedJob:
        """Submit one design point (mapping and/or keyword parameters)."""
        merged: Dict[str, object] = dict(point or {})
        merged.update(params)
        return self._submitted(self._request("POST", "/jobs",
                                             {"point": merged}))

    def submit_points(self, points: Sequence[Mapping[str, object]]
                      ) -> List[SubmittedJob]:
        """Submit a batch of points; resolutions come back in order."""
        response = self._request("POST", "/jobs",
                                 {"points": [dict(p) for p in points]})
        return [self._submitted(entry) for entry in response["results"]]

    def result(self, key: str) -> Optional[NetworkResult]:
        """Fetch a finished result by content key (``None`` if unknown).

        A key that is currently executing (HTTP 202) also returns ``None``;
        use :meth:`lookup` to distinguish the two.
        """
        status, result = self.lookup(key)
        return result if status == "done" else None

    def lookup(self, key: str) -> tuple:
        """(status, result) for a key: ('done', NetworkResult),
        ('pending', None) or ('unknown', None)."""
        try:
            payload = self._request("GET", f"/jobs/{key}")
        except ServeError as error:
            if error.status == 404:
                return "unknown", None
            raise
        if payload["status"] == "pending":
            return "pending", None
        return "done", NetworkResult.from_dict(payload["result"])

    def submit_points_stream(
        self, points: Sequence[Mapping[str, object]],
        on_entry: Optional[Callable[[int, SubmittedJob], None]] = None,
    ) -> List[SubmittedJob]:
        """Submit a batch and consume results as the server resolves them.

        Against a cluster coordinator this streams NDJSON: ``on_entry(index,
        job)`` fires per resolved point (in submission order) while later
        points are still simulating.  Against a server that does not stream
        (plain ``loom-repro serve`` answers a single JSON document) the
        callback still fires per entry, just all at once -- same results
        either way.
        """
        try:
            response = self._open("POST", "/jobs",
                                  {"points": [dict(p) for p in points]},
                                  accept="application/x-ndjson")
        except urllib.error.HTTPError as error:
            self._raise_serve_error(error)
        with response:
            content_type = (response.headers.get("Content-Type") or "")
            if "application/x-ndjson" not in content_type:
                payload = json.loads(response.read().decode("utf-8"))
                submitted = [self._submitted(entry)
                             for entry in payload["results"]]
                if on_entry is not None:
                    for index, job in enumerate(submitted):
                        on_entry(index, job)
                return submitted
            submitted = []
            for raw_line in response:
                line = raw_line.strip()
                if not line:
                    continue
                entry = json.loads(line.decode("utf-8"))
                if entry.get("done"):
                    break
                if "error" in entry:
                    raise ServeError(int(entry.get("status", 500)),
                                     str(entry["error"]))
                job = self._submitted(entry)
                if on_entry is not None:
                    on_entry(entry.get("index", len(submitted)), job)
                submitted.append(job)
            return submitted

    def explore(self, space: Mapping[str, object], **options: object) -> dict:
        """Run a sweep on the server (``space`` is a SweepSpec dict).

        Options: ``strategy``, ``options`` (a mapping of strategy
        constructor options, e.g. ``{"samples": 32, "seed": 7}``),
        ``budget`` (cap on fresh true simulations), ``objectives``,
        ``baseline`` -- the same knobs as :func:`repro.explore.explore`.
        Legacy top-level ``samples`` / ``seed`` keys keep working.
        """
        return self._request("POST", "/explore",
                             {"space": dict(space), **options})

    def explore_stream(self, space: Mapping[str, object],
                       **options: object) -> Iterator[tuple]:
        """Run a sweep and yield ``(event, data)`` pairs as it progresses.

        Against a cluster coordinator this consumes server-sent events:
        ``start`` (sweep shape), ``progress`` (per executor batch, with
        brief per-job results), ``result`` (the full exploration result
        dict) and a terminal ``end`` (``{"complete": true}``, or ``false``
        with a ``reason`` such as ``"shutdown"``).  Against a server that
        does not stream, yields a synthetic ``result`` then ``end`` pair
        from the plain JSON response, so callers need no special-casing.
        """
        payload = {"space": dict(space), **options, "stream": True}
        try:
            response = self._open("POST", "/explore", payload,
                                  accept="text/event-stream")
        except urllib.error.HTTPError as error:
            self._raise_serve_error(error)
        with response:
            content_type = (response.headers.get("Content-Type") or "")
            if "text/event-stream" not in content_type:
                result = json.loads(response.read().decode("utf-8"))
                yield "result", result
                yield "end", {"complete": True}
                return
            event: Optional[str] = None
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if line.startswith("event:"):
                    event = line[len("event:"):].strip()
                elif line.startswith("data:") and event is not None:
                    data = json.loads(line[len("data:"):].strip())
                    yield event, data
                    if event == "end":
                        return
                    event = None

    def shutdown(self) -> dict:
        """Ask the server to stop gracefully."""
        return self._request("POST", "/shutdown")
