"""Thin stdlib HTTP client for the ``loom-repro serve`` service.

:class:`ServeClient` speaks the JSON protocol of
:mod:`repro.serve.service` with nothing but ``urllib`` -- no dependencies,
so any Python process (another CLI invocation, a notebook, a CI smoke
script) can submit simulations to a warm server.  Server-side failures are
raised as :class:`ServeError` carrying the HTTP status and, for 429
backpressure responses, the ``Retry-After`` hint.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.sim.results import NetworkResult

__all__ = ["ServeClient", "ServeError", "SubmittedJob"]


class ServeError(Exception):
    """An HTTP error response from the service."""

    def __init__(self, status: int, message: str,
                 retry_after_s: Optional[int] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class SubmittedJob:
    """One submitted point's resolution, as the server reported it.

    ``status`` is ``"cached"`` (answered from the warm store),
    ``"executed"`` (this request ran the simulation) or ``"coalesced"``
    (another concurrent request ran it and this one shared the result).
    """

    key: str
    status: str
    result: NetworkResult


class ServeClient:
    """Client for one ``loom-repro serve`` endpoint."""

    def __init__(self, base_url: str, timeout_s: float = 600.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing -------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        request = urllib.request.Request(
            self.base_url + path,
            data=(json.dumps(payload).encode("utf-8")
                  if payload is not None else None),
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            retry_after: Optional[int] = None
            header = error.headers.get("Retry-After")
            if header is not None:
                try:
                    retry_after = int(header)
                except ValueError:
                    retry_after = None
            try:
                message = json.loads(error.read().decode("utf-8"))["error"]
            except (ValueError, KeyError):
                message = error.reason
            raise ServeError(error.code, message,
                             retry_after_s=retry_after) from None

    @staticmethod
    def _submitted(entry: Mapping[str, object]) -> SubmittedJob:
        return SubmittedJob(
            key=entry["key"],
            status=entry["status"],
            result=NetworkResult.from_dict(entry["result"]),
        )

    # -- API ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def networks(self) -> List[dict]:
        return self._request("GET", "/networks")["networks"]

    def submit(self, point: Optional[Mapping[str, object]] = None,
               **params: object) -> SubmittedJob:
        """Submit one design point (mapping and/or keyword parameters)."""
        merged: Dict[str, object] = dict(point or {})
        merged.update(params)
        return self._submitted(self._request("POST", "/jobs",
                                             {"point": merged}))

    def submit_points(self, points: Sequence[Mapping[str, object]]
                      ) -> List[SubmittedJob]:
        """Submit a batch of points; resolutions come back in order."""
        response = self._request("POST", "/jobs",
                                 {"points": [dict(p) for p in points]})
        return [self._submitted(entry) for entry in response["results"]]

    def result(self, key: str) -> Optional[NetworkResult]:
        """Fetch a finished result by content key (``None`` if unknown).

        A key that is currently executing (HTTP 202) also returns ``None``;
        use :meth:`lookup` to distinguish the two.
        """
        status, result = self.lookup(key)
        return result if status == "done" else None

    def lookup(self, key: str) -> tuple:
        """(status, result) for a key: ('done', NetworkResult),
        ('pending', None) or ('unknown', None)."""
        try:
            payload = self._request("GET", f"/jobs/{key}")
        except ServeError as error:
            if error.status == 404:
                return "unknown", None
            raise
        if payload["status"] == "pending":
            return "pending", None
        return "done", NetworkResult.from_dict(payload["result"])

    def explore(self, space: Mapping[str, object], **options: object) -> dict:
        """Run a sweep on the server (``space`` is a SweepSpec dict).

        Options: ``strategy``, ``samples``, ``seed``, ``objectives``,
        ``baseline`` -- the same knobs as :func:`repro.explore.explore`.
        """
        return self._request("POST", "/explore",
                             {"space": dict(space), **options})

    def shutdown(self) -> dict:
        """Ask the server to stop gracefully."""
        return self._request("POST", "/shutdown")
