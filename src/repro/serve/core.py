"""Shard-facing core of the simulation service (HTTP-independent).

:class:`ServiceCore` is the submission engine that used to live inside
:class:`~repro.serve.service.SimulationService`: request coalescing, the
bounded-admission backpressure, the warm-store fast path, sweep execution
and the stats surface -- everything a *node* needs, with no opinion about
the wire protocol in front of it.

Two fronts wrap it today:

* :class:`~repro.serve.service.SimulationService` -- the single-box threaded
  HTTP server behind ``loom-repro serve``;
* :class:`~repro.cluster.worker.ClusterWorker` -- the asyncio shard service
  behind ``loom-repro cluster``, where each worker owns one core (and
  through it one warm executor + one SQLite store).

The split is what lets the cluster reuse the serve semantics verbatim: a
shard answers exactly like the single-box service because it *is* the same
code path.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.explore.engine import explore
from repro.explore.search import strategy_from_request
from repro.explore.space import SweepSpec, canonical_point, point_to_job
from repro.sim.jobs import JobExecutor, ResultCache, job_key
from repro.sim.results import NetworkResult

__all__ = ["Backpressure", "ServiceCore", "ServiceStats"]


class Backpressure(Exception):
    """Raised when the in-flight job bound is reached (maps to HTTP 429)."""

    def __init__(self, pending: int, limit: int, retry_after_s: int) -> None:
        super().__init__(
            f"job queue is full ({pending} in flight, limit {limit}); "
            f"retry in {retry_after_s}s"
        )
        self.pending = pending
        self.limit = limit
        self.retry_after_s = retry_after_s


@dataclass
class ServiceStats:
    """Request-level counters (everything execution-level lives in the
    executor/cache stats the service also reports)."""

    requests: int = 0
    submitted_points: int = 0
    store_answers: int = 0
    coalesced: int = 0
    rejected: int = 0
    errors: int = 0
    explores: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "submitted_points": self.submitted_points,
            "store_answers": self.store_answers,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "explores": self.explores,
        }


class _Inflight:
    """One in-flight execution other submissions of the same key can join."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[NetworkResult] = None
        self.error: Optional[BaseException] = None


@dataclass
class _Submitted:
    """Resolution of one submitted point."""

    key: str
    status: str  # "cached", "executed" or "coalesced"
    result: NetworkResult

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "status": self.status,
            "result": self.result.to_dict(),
        }


class ServiceCore:
    """Coalescing, backpressure, execution and stats for one serve node.

    Parameters
    ----------
    executor:
        The shared :class:`JobExecutor` (and, through it, the result cache /
        persistent store) every request executes against.  The core owns it:
        ``close()`` closes it.
    queue_limit:
        Bound on concurrently admitted execution batches before submissions
        are refused with :class:`Backpressure` (one batch = one unit,
        however many jobs it carries; coalesced duplicates and store answers
        never count).
    retry_after_s:
        The ``Retry-After`` hint carried by :class:`Backpressure`.
    wait_timeout_s:
        How long a coalesced waiter polls an owner's execution before
        giving up (a safety net; owners always publish, even on error).
    engine:
        Simulation engine for the cache-miss sets the core executes
        (default ``"batched"``); ``None`` follows the executor's own
        setting.  All engines are bit-identical, so served results are
        unaffected by the choice.
    """

    def __init__(
        self,
        executor: Optional[JobExecutor] = None,
        queue_limit: int = 8,
        retry_after_s: int = 1,
        wait_timeout_s: float = 600.0,
        engine: Optional[str] = "batched",
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.executor = executor if executor is not None else JobExecutor(
            cache=ResultCache(max_memory_entries=512))
        self.queue_limit = queue_limit
        self.retry_after_s = retry_after_s
        self.wait_timeout_s = wait_timeout_s
        if engine is not None:
            from repro.sim.fastpath import resolve_engine

            resolve_engine(engine)  # fail fast on unknown names
        self.engine = engine
        self.stats = ServiceStats()
        self.started_at: Optional[float] = None
        self._inflight: Dict[str, _Inflight] = {}
        self._pending_batches = 0
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._execute_lock = threading.Lock()

    # -- core submission path -------------------------------------------------

    @property
    def cache(self) -> Optional[ResultCache]:
        return self.executor.cache

    def _bump(self, counter: str, amount: int = 1) -> None:
        """Race-free ServiceStats increment (handlers run concurrently)."""
        with self._stats_lock:
            setattr(self.stats, counter,
                    getattr(self.stats, counter) + amount)

    @contextlib.contextmanager
    def _admit_batch(self):
        """Claim one execution-batch admission slot (429 when full).

        Both execution-bearing routes (/jobs owner batches and /explore
        sweeps) pass through this bound, so neither can queue unboundedly
        on the execution lock.
        """
        with self._lock:
            if self._pending_batches >= self.queue_limit:
                self._bump("rejected")
                raise Backpressure(
                    pending=self._pending_batches,
                    limit=self.queue_limit,
                    retry_after_s=self.retry_after_s,
                )
            self._pending_batches += 1
        try:
            yield
        finally:
            with self._lock:
                self._pending_batches -= 1

    def submit_points(self, raw_points: Sequence[Mapping[str, object]],
                      timeout_s: Optional[float] = None) -> List[_Submitted]:
        """Resolve a batch of raw point mappings into results.

        Point order is preserved.  Already-stored keys are answered from the
        cache (no lock, no admission needed); keys another request is
        currently executing are joined (coalesced); the rest are executed
        here as one executor batch -- which counts as *one* unit against the
        ``queue_limit`` admission bound, however many jobs it carries.
        Raises :class:`Backpressure` when the service already has
        ``queue_limit`` admitted batches, and ``ValueError`` for malformed
        points.
        """
        timeout_s = timeout_s if timeout_s is not None else self.wait_timeout_s
        entries: List[Tuple[object, str]] = []
        for raw in raw_points:
            if not isinstance(raw, Mapping):
                raise ValueError(
                    f"a job point must be a JSON object, got {type(raw).__name__}"
                )
            job = point_to_job(canonical_point(raw))
            entries.append((job, job_key(job)))

        statuses: Dict[str, str] = {}
        resolved: Dict[str, NetworkResult] = {}
        # Pass 1, no service lock: warm keys resolve straight from the
        # (internally locked) cache, so warm traffic never serialises behind
        # another request's admission or bookkeeping.  peek(), not get():
        # cold keys get their authoritative (counted) lookup inside
        # executor.run, so misses are not double-counted in /stats.
        for _, key in entries:
            if key in statuses:
                continue
            cached = self.cache.peek(key) if self.cache is not None else None
            if cached is not None:
                statuses[key] = "cached"
                resolved[key] = cached

        waits: Dict[str, _Inflight] = {}
        own: List[Tuple[object, str]] = []
        coalesced = 0
        if len(resolved) < len({key for _, key in entries}):
            with self._lock:
                for job, key in entries:
                    if key in statuses:
                        continue
                    inflight = self._inflight.get(key)
                    if inflight is not None:
                        statuses[key] = "coalesced"
                        waits[key] = inflight
                        coalesced += 1
                        continue
                    statuses[key] = "executed"
                    own.append((job, key))
                if own:
                    if self._pending_batches >= self.queue_limit:
                        self._bump("rejected")
                        raise Backpressure(
                            pending=self._pending_batches,
                            limit=self.queue_limit,
                            retry_after_s=self.retry_after_s,
                        )
                    self._pending_batches += 1
                    for _, key in own:
                        self._inflight[key] = _Inflight()
        # Admission succeeded: commit the request-level counters.
        self._bump("submitted_points", len(entries))
        self._bump("store_answers",
                   sum(1 for s in statuses.values() if s == "cached"))
        self._bump("coalesced", coalesced)

        if own:
            error: Optional[BaseException] = None
            results: List[NetworkResult] = []
            try:
                with self._execute_lock:
                    results = self.executor.run([job for job, _ in own],
                                                engine=self.engine)
            except BaseException as exc:  # always publish, even on error
                error = exc
            finally:
                with self._lock:
                    self._pending_batches -= 1
                    for index, (_, key) in enumerate(own):
                        inflight = self._inflight.pop(key)
                        if error is None:
                            inflight.result = results[index]
                            resolved[key] = results[index]
                        else:
                            inflight.error = error
                        inflight.event.set()
            if error is not None:
                raise error

        for key, inflight in waits.items():
            if not inflight.event.wait(timeout_s):
                raise TimeoutError(
                    f"timed out after {timeout_s}s waiting for in-flight "
                    f"job {key}"
                )
            if inflight.error is not None:
                raise RuntimeError(
                    f"coalesced job {key} failed in its owning request: "
                    f"{inflight.error}"
                )
            resolved[key] = inflight.result

        return [
            _Submitted(key=key, status=statuses[key], result=resolved[key])
            for _, key in entries
        ]

    def lookup(self, key: str) -> Tuple[str, Optional[NetworkResult]]:
        """Look a content key up: ('done', result), ('pending', None) or
        ('unknown', None)."""
        result = self.cache.peek(key) if self.cache is not None else None
        if result is not None:
            return "done", result
        with self._lock:
            if key in self._inflight:
                return "pending", None
        return "unknown", None

    def run_explore(self, request: Mapping[str, object]) -> Dict[str, object]:
        """Run one design-space sweep against the warm store.

        ``request`` is ``{"space": <SweepSpec dict>, "strategy": name,
        "options": {key: value}, "budget": N, "objectives": [...],
        "baseline": kind}`` with everything but ``space`` optional;
        ``options`` is the uniform strategy-option mapping (``--strategy-opt``
        on the CLI) and ``budget`` caps true simulations.  Legacy top-level
        ``samples`` / ``seed`` keys keep working.  ``stream`` is accepted
        (and ignored here) so streaming-capable fronts can share the
        validation.
        """
        if "space" not in request:
            raise ValueError("explore request needs a 'space' sweep spec")
        unknown = set(request) - {"space", "strategy", "options", "budget",
                                  "samples", "seed", "objectives", "baseline",
                                  "stream"}
        if unknown:
            raise ValueError(f"unknown explore request keys: {sorted(unknown)}")
        space = SweepSpec.from_dict(request["space"])
        strategy, budget = strategy_from_request(request)
        self._bump("explores")
        with self._admit_batch(), self._execute_lock:
            result = explore(
                space,
                strategy=strategy,
                objectives=request.get(
                    "objectives", ("speedup", "energy_efficiency", "area")),
                executor=self.executor,
                baseline=request.get("baseline", "dpnn"),
                engine=self.engine,
                budget=budget,
            )
        return result.to_dict()

    def stats_dict(self) -> Dict[str, object]:
        """Everything /stats reports, as plain data."""
        payload: Dict[str, object] = {
            "uptime_s": (time.time() - self.started_at
                         if self.started_at is not None else 0.0),
            "queue_limit": self.queue_limit,
            "pending_batches": self._pending_batches,
            "inflight": len(self._inflight),
            "service": self.stats.to_dict(),
            "executor": self.executor.stats.to_dict(),
        }
        if self.cache is not None:
            payload["cache"] = dict(self.cache.stats.to_dict(),
                                    memory_entries=len(self.cache))
            backend = self.cache.backend
            if backend is not None:
                payload["store"] = (
                    backend.stats_dict() if hasattr(backend, "stats_dict")
                    else {"backend": backend.describe(),
                          "entries": len(backend)}
                )
        return payload

    def cache_hit_ratio(self) -> float:
        """Fraction of submitted jobs answered without a simulation (the
        ``/metrics`` cache-efficiency gauge; 0.0 while nothing was
        submitted)."""
        submitted = self.stats.submitted_points
        if not submitted:
            return 0.0
        executor_stats = self.executor.stats
        # Store fast-path and coalescing answers happen above the executor,
        # so they appear in the service counters, not the executor's.
        answered = (self.stats.store_answers + self.stats.coalesced
                    + executor_stats.cache_hits + executor_stats.dedup_hits)
        return min(1.0, answered / submitted)

    # -- lifecycle ------------------------------------------------------------

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Wait until no batch is admitted or in flight; True when idle."""
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            with self._lock:
                idle = self._pending_batches == 0 and not self._inflight
            if idle:
                return True
            time.sleep(0.02)
        return False

    def close(self, drain_timeout_s: float = 30.0) -> None:
        """Drain in-flight work, then release the executor and store.

        The execute lock guarantees no ``executor.run`` (and therefore no
        store write) is mid-flight when the resources close; a request
        racing the shutdown would otherwise hit a closed SQLite connection
        and lose its computed result.
        """
        self.drain(drain_timeout_s)
        with self._execute_lock:
            self.executor.close()
            if self.cache is not None:
                self.cache.close()
