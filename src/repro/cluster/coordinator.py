"""Cluster coordinator: the async front door that shards work across workers.

The coordinator owns no executor and simulates nothing.  It routes every
job by content key over a :class:`~repro.cluster.ring.ConsistentHashRing`
of workers, fans batches out concurrently, merges shard answers back in
**submission order** (so a cluster answer is bit-identical to an in-process
run), and layers on the operational surface one box never needed:

* **Sharding** -- all submissions of one (network, accelerator, config)
  land on the same worker's warm executor and store, whoever sends them;
* **Failover** -- a worker that dies mid-batch has its keys re-routed to
  the surviving shards (ring exclusion, not mutation: the worker regains
  its keyspace the moment a health check sees it again);
* **Backpressure politeness** -- shard 429s are retried with capped
  exponential backoff honouring ``Retry-After``;
* **Rate limiting** -- per-client token buckets and quotas at the door
  (clients are keyed by ``X-Client-Id``, falling back to peer address);
* **Streaming** -- ``POST /jobs`` can answer NDJSON (one result line per
  resolved point, flushed in submission order as shards answer) and
  ``POST /explore`` can answer SSE (progress events per strategy round,
  then the full result), so clients stop blocking on whole batches;
* **Observability** -- Prometheus ``/metrics`` with request counts and
  latencies, routed-point and retry counters, and per-shard health gauges.

========  =============  ====================================================
method    path           behaviour
========  =============  ====================================================
POST      /jobs          route a point batch across shards (JSON, or NDJSON
                         stream with ``Accept: application/x-ndjson``)
POST      /explore       run a sweep through the shards (JSON, or SSE with
                         ``"stream": true`` / ``Accept: text/event-stream``)
GET       /jobs/<key>    proxy a key lookup to its owning shard
GET       /networks      the zoo with per-kind layer counts
GET       /healthz       coordinator + per-shard health
GET       /stats         coordinator counters, shard table, rate limiter
GET       /metrics       Prometheus text format
POST      /shutdown      graceful stop (in-flight streams get a clean end)
========  =============  ====================================================
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.aio import (
    AsyncHTTPServer,
    HTTPRequest,
    HTTPResponder,
    RequestError,
    fetch,
    fetch_json,
)
from repro.cluster.ratelimit import RateLimiter
from repro.cluster.ring import ConsistentHashRing
from repro.obs import MetricsRegistry, Span, get_logger, get_tracer
from repro.serve.client import compute_backoff
from repro.sim.jobs import ExecutorStats
from repro.sim.results import NetworkResult

__all__ = ["ClusterCoordinator", "ShardState"]

_log = get_logger("cluster.coordinator")


async def _gather_bools(coroutines) -> List[bool]:
    return await asyncio.gather(*coroutines)


@dataclass
class ShardState:
    """What the coordinator believes about one worker."""

    url: str
    healthy: bool = True
    consecutive_failures: int = 0
    last_error: Optional[str] = None
    last_check: Optional[float] = None
    #: Whether this shard holds current ring membership (pushed at start;
    #: re-pushed when a restarted shard comes back with empty state).
    ring_pushed: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "url": self.url,
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "ring_pushed": self.ring_pushed,
        }


@dataclass
class CoordinatorStats:
    """Front-door counters (shard-level work is counted on the shards)."""

    requests: int = 0
    submitted_points: int = 0
    routed_points: int = 0
    shard_retries: int = 0
    rate_limited: int = 0
    errors: int = 0
    explores: int = 0
    streams: int = 0
    #: Dead-shard points answered from a surviving shard's cache tier
    #: instead of being re-simulated (the failover probe path).
    peer_cache_answers: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in (
            "requests", "submitted_points", "routed_points", "shard_retries",
            "rate_limited", "errors", "explores", "streams",
            "peer_cache_answers")}


@dataclass
class _Pending:
    """One submitted point travelling through the fan-out."""

    index: int
    point: Mapping[str, object]
    key: str
    entry: Optional[Dict[str, object]] = None
    attempts: int = 0


@dataclass(eq=False)  # identity-hashed: handles live in a set
class _StreamHandle:
    """An active SSE stream shutdown must terminate cleanly."""

    queue: "asyncio.Queue"
    done: threading.Event = field(default_factory=threading.Event)


class ClusterCoordinator:
    """The sharded front door behind ``loom-repro cluster``.

    Parameters
    ----------
    workers:
        Worker base URLs (``http://host:port``).  The ring is built over
        these; health checks may mark members down and back up, but
        membership itself is fixed for the coordinator's lifetime.
    host / port:
        Bind address; ``port=0`` asks the OS for a free port.
    replicas:
        Virtual nodes per worker on the hash ring.
    rate_limiter:
        Optional :class:`RateLimiter` applied to execution-bearing routes
        (``/jobs``, ``/explore``).  ``None`` disables rate limiting.
    health_interval_s:
        Seconds between background health sweeps (workers marked dead by a
        failed request are re-probed and can recover).
    shard_timeout_s:
        Deadline for one shard batch (covers a cold sweep's simulations).
    shard_backpressure_retries:
        How many times a shard 429 is retried (with capped exponential
        backoff honouring ``Retry-After``) before failing the request.
    peer_cache:
        Activate the cluster-shared cache tier: ring membership is pushed
        to every worker at start (``POST /ring``), workers answer local
        misses from the key's owning peer, and the coordinator probes
        surviving shards for a dead shard's results during mid-batch
        re-routes instead of re-simulating them.
    peer_timeout_s:
        Strict budget for one peer-cache lookup (both the workers' peer
        fetches and the coordinator's failover probes).
    peer_write_through:
        Have workers replicate fresh results to the key's failover target
        so re-routed keys stay warm across shard death.
    """

    def __init__(
        self,
        workers: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 64,
        rate_limiter: Optional[RateLimiter] = None,
        health_interval_s: float = 2.0,
        shard_timeout_s: float = 600.0,
        shard_backpressure_retries: int = 8,
        peer_cache: bool = True,
        peer_timeout_s: float = 1.0,
        peer_write_through: bool = True,
    ) -> None:
        if not workers:
            raise ValueError("a cluster needs at least one worker URL")
        self.shards: Dict[str, ShardState] = {
            url.rstrip("/"): ShardState(url=url.rstrip("/"))
            for url in workers
        }
        if len(self.shards) != len(workers):
            raise ValueError(f"duplicate worker URLs in {list(workers)}")
        self.ring = ConsistentHashRing(self.shards, replicas=replicas)
        self.rate_limiter = rate_limiter
        if peer_timeout_s <= 0:
            raise ValueError(
                f"peer_timeout_s must be > 0, got {peer_timeout_s}")
        self.peer_cache = peer_cache
        self.peer_timeout_s = peer_timeout_s
        self.peer_write_through = peer_write_through
        self.health_interval_s = health_interval_s
        self.shard_timeout_s = shard_timeout_s
        self.shard_backpressure_retries = shard_backpressure_retries
        self.stats = CoordinatorStats()
        self.started_at: Optional[float] = None
        self._server = AsyncHTTPServer(self._handle, host=host, port=port,
                                       server_tag="loom-cluster-coordinator")
        self._stats_lock = threading.Lock()
        self._stop_lock = threading.Lock()
        self._stopping = False
        self._stopped = False
        self._health_task: Optional[asyncio.Task] = None
        self._streams: set = set()
        self._explore_threads: set = set()

        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "loom_coordinator_requests_total",
            "HTTP requests handled, by path and status.",
            labelnames=("path", "status"))
        self._request_seconds = self.metrics.histogram(
            "loom_coordinator_request_seconds",
            "Request latency in seconds, by path.",
            labelnames=("path",))
        self._routed_total = self.metrics.counter(
            "loom_coordinator_points_routed_total",
            "Design points routed, by shard.", labelnames=("shard",))
        self._retries_total = self.metrics.counter(
            "loom_coordinator_shard_retries_total",
            "Point re-routes after a shard failed mid-batch.")
        self._ratelimited_total = self.metrics.counter(
            "loom_coordinator_ratelimited_total",
            "Requests refused by the per-client rate limiter.")
        self._stream_events_total = self.metrics.counter(
            "loom_coordinator_stream_events_total",
            "Chunks/events written on streaming responses.")
        self._peer_cache_hits_total = self.metrics.counter(
            "loom_coordinator_peer_cache_hits_total",
            "Dead-shard points answered from a survivor's cache tier.")
        self._peer_cache_misses_total = self.metrics.counter(
            "loom_coordinator_peer_cache_misses_total",
            "Failover probes no surviving shard could answer.")
        self._peer_probe_seconds = self.metrics.histogram(
            "loom_coordinator_peer_probe_seconds",
            "Failover cache-probe latency in seconds, per point.")
        self._shard_healthy = self.metrics.gauge(
            "loom_coordinator_shard_healthy",
            "1 when the shard answered its last health check, else 0.",
            labelnames=("shard",))
        self.metrics.gauge(
            "loom_coordinator_active_streams",
            "Streaming responses currently open.",
            collect=lambda: len(self._streams))
        for url in self.shards:
            self._shard_healthy.set(1, shard=url)

    # -- lifecycle ------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def url(self) -> str:
        return self._server.url

    @property
    def loop(self) -> Optional[asyncio.AbstractEventLoop]:
        return self._server.loop

    def start(self) -> str:
        url = self._server.start()
        self.started_at = time.time()

        async def _install_health_loop() -> None:
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop())

        self._server.run_coroutine(_install_health_loop()).result(timeout=5.0)
        if self.peer_cache:
            # Hand every worker the ring so their peer tiers route the
            # same way this coordinator does.  A worker that cannot take
            # it (older build, mid-restart) just stays shared-nothing; the
            # health loop retries once it answers again.
            self._server.run_coroutine(
                asyncio.wait_for(
                    _gather_bools(self._push_ring(shard_url)
                                  for shard_url in self.shards),
                    timeout=30.0)
            ).result(timeout=35.0)
        _log.info("coordinator.started", url=url, shards=len(self.shards),
                  peer_cache=self.peer_cache)
        return url

    def stop(self, drain_timeout_s: float = 15.0) -> None:
        """Graceful stop: end streams cleanly, drain handlers, stop the loop.

        Active SSE streams receive a terminal
        ``end {"complete": false, "reason": "shutdown"}`` event before the
        connection closes, so a client watching a long sweep sees a clean
        end-of-stream instead of a hung socket.
        """
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
        if self._server.loop is None:
            return
        self._stopping = True
        loop = self._server.loop
        for handle in list(self._streams):
            loop.call_soon_threadsafe(
                handle.queue.put_nowait,
                ("end", {"complete": False, "reason": "shutdown"}))
        if self._health_task is not None:
            loop.call_soon_threadsafe(self._health_task.cancel)
            self._health_task = None
        # Sweeps running on explore threads notice _stopping at their next
        # batch and unwind; give them (and the streams they feed) a moment.
        for thread in list(self._explore_threads):
            thread.join(timeout=drain_timeout_s)
        self._server.stop(drain_timeout_s=drain_timeout_s)
        _log.info("coordinator.stopped", url=self._server.url)

    def request_stop(self) -> None:
        """Trigger a graceful stop without blocking (signal-handler safe)."""
        threading.Thread(target=self.stop, daemon=True,
                         name="loom-coordinator-stop").start()

    def wait_until_stopped(self, poll_s: float = 0.5) -> None:
        """Block until the coordinator has stopped (the CLI's main loop)."""
        while not self._stopped or self._server.loop is not None:
            time.sleep(poll_s)

    def __enter__(self) -> "ClusterCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, counter,
                    getattr(self.stats, counter) + amount)

    # -- health ---------------------------------------------------------------

    def healthy_shards(self) -> List[str]:
        return [url for url, shard in self.shards.items() if shard.healthy]

    def _mark_shard(self, url: str, healthy: bool,
                    error: Optional[str] = None) -> None:
        shard = self.shards[url]
        if healthy != shard.healthy:
            # Log transitions only -- the health loop re-probes every couple
            # of seconds and steady state must not spam the log.
            if healthy:
                _log.info("shard.recovered", shard=url)
            else:
                _log.warning("shard.down", shard=url, error=error)
        shard.healthy = healthy
        shard.last_check = time.time()
        if healthy:
            shard.consecutive_failures = 0
            shard.last_error = None
        else:
            shard.consecutive_failures += 1
            shard.last_error = error
            # Whatever replaces this shard (a restarted process with an
            # empty ring) must get membership pushed again on recovery.
            shard.ring_pushed = False
        self._shard_healthy.set(1 if healthy else 0, shard=url)

    async def _push_ring(self, url: str) -> bool:
        """Hand ``url`` the ring membership (and peer-tier knobs)."""
        payload = {
            "nodes": list(self.shards),
            "self": url,
            "replicas": self.ring.replicas,
            "timeout_ms": self.peer_timeout_s * 1000.0,
            "write_through": self.peer_write_through,
        }
        try:
            reply = await fetch(url, "POST", "/ring", payload=payload,
                                timeout_s=10.0)
            ok = 200 <= reply.status < 300
        except (ConnectionError, OSError, asyncio.TimeoutError):
            ok = False
        self.shards[url].ring_pushed = ok
        return ok

    async def _probe_shard(self, url: str) -> bool:
        try:
            payload = await fetch_json(url, "GET", "/healthz", timeout_s=5.0)
            ok = bool(payload.get("ok"))
            self._mark_shard(url, ok,
                            None if ok else "healthz reported not ok")
            if ok and self.peer_cache and not self.shards[url].ring_pushed:
                await self._push_ring(url)
            return ok
        except (ConnectionError, OSError, asyncio.TimeoutError,
                RequestError, ValueError) as error:
            self._mark_shard(url, False, f"{type(error).__name__}: {error}")
            return False

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval_s)
            await asyncio.gather(*(self._probe_shard(url)
                                   for url in self.shards))

    # -- fan-out --------------------------------------------------------------

    async def _keys_for(self, points: Sequence[Mapping[str, object]]
                        ) -> List[str]:
        """Content keys for ``points`` (validates them as a side effect)."""

        def _compute() -> List[str]:
            from repro.explore.space import canonical_point, point_to_job
            from repro.sim.jobs import job_key

            keys = []
            for raw in points:
                if not isinstance(raw, Mapping):
                    raise RequestError(
                        400, f"a job point must be a JSON object, "
                             f"got {type(raw).__name__}")
                try:
                    keys.append(job_key(point_to_job(canonical_point(raw))))
                except (ValueError, KeyError, TypeError) as error:
                    raise RequestError(
                        400, f"{type(error).__name__}: {error}") from None
            return keys

        return await asyncio.get_running_loop().run_in_executor(None,
                                                                _compute)

    async def _submit_to_shard(self, url: str,
                               points: List[Mapping[str, object]]
                               ) -> List[Dict[str, object]]:
        """One shard batch, retrying 429 backpressure politely.

        Raises ``ConnectionError``/``asyncio.TimeoutError`` when the shard
        is unreachable (the caller's failover path) and ``RequestError``
        for anything the shard itself rejected (a client bug, not a shard
        death -- never failed over).
        """
        for attempt in range(self.shard_backpressure_retries + 1):
            reply = await fetch(url, "POST", "/jobs",
                                payload={"points": list(points)},
                                timeout_s=self.shard_timeout_s)
            if reply.status == 429 and \
                    attempt < self.shard_backpressure_retries:
                retry_after: Optional[float] = None
                header = reply.headers.get("retry-after")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
                await asyncio.sleep(compute_backoff(
                    attempt, retry_after_s=retry_after, cap_s=5.0))
                continue
            if not 200 <= reply.status < 300:
                try:
                    message = str(reply.json().get("error", reply.status))
                except ValueError:
                    message = f"shard answered HTTP {reply.status}"
                raise RequestError(reply.status, message)
            payload = reply.json()
            results = payload.get("results")
            if not isinstance(results, list) or len(results) != len(points):
                raise ConnectionError(
                    f"{url} answered {len(results) if isinstance(results, list) else 'no'} "
                    f"results for {len(points)} points")
            return results
        raise RequestError(429, f"shard {url} still overloaded after "
                                f"{self.shard_backpressure_retries} retries")

    async def _submit_points(self, points: Sequence[Mapping[str, object]],
                             emit=None) -> List[Dict[str, object]]:
        """Route ``points`` across shards; merged entries in submission order.

        ``emit(index, entry)`` (async) is called for every resolved point in
        submission order, as soon as every earlier point has resolved -- the
        NDJSON streaming hook.  A shard that fails mid-batch is marked
        unhealthy and its points re-routed across the survivors; only when
        no healthy shard remains does the request fail (503).
        """
        if self._stopping:
            raise RequestError(503, "coordinator is shutting down")
        keys = await self._keys_for(points)
        pending = [_Pending(index=index, point=point, key=key)
                   for index, (point, key) in enumerate(zip(points, keys))]
        slots: List[Optional[Dict[str, object]]] = [None] * len(pending)
        self._bump("submitted_points", len(pending))
        flushed = 0

        async def _flush() -> int:
            nonlocal flushed
            while flushed < len(slots) and slots[flushed] is not None:
                if emit is not None:
                    await emit(flushed, slots[flushed])
                flushed += 1
            return flushed

        # Start from the shards already known dead so their keys route
        # around them immediately; a request-time failure adds to this set.
        dead = {url for url, shard in self.shards.items()
                if not shard.healthy}
        remaining = pending
        max_rounds = len(self.shards) + 1
        for _round in range(max_rounds):
            if not remaining:
                break
            groups: Dict[str, List[_Pending]] = {}
            for item in remaining:
                owner = self.ring.node_for(item.key, exclude=dead)
                if owner is None:
                    raise RequestError(
                        503, f"no healthy workers left for key {item.key} "
                             f"({len(self.shards)} total, all down)")
                groups.setdefault(owner, []).append(item)

            async def _run_group(url: str, items: List[_Pending]):
                try:
                    entries = await self._submit_to_shard(
                        url, [item.point for item in items])
                except (ConnectionError, OSError,
                        asyncio.TimeoutError) as error:
                    return url, items, error
                # Fill and flush as THIS shard answers -- a fast shard's
                # prefix streams out while slower shards are still
                # simulating.  (Handlers run on one event loop; fills and
                # flushes never interleave mid-statement.)
                self._bump("routed_points", len(items))
                self._routed_total.inc(len(items), shard=url)
                for item, entry in zip(items, entries):
                    slots[item.index] = entry
                await _flush()
                return url, items, None

            outcomes = await asyncio.gather(
                *(_run_group(url, items) for url, items in groups.items()))
            remaining = []
            for url, items, error in outcomes:
                if error is not None:
                    # Shard died mid-batch: exclude it and re-route its
                    # points.  (A client-level RequestError propagates out
                    # of gather above -- a 400 is the caller's bug on every
                    # shard alike, not a failover case.)
                    self._mark_shard(url, False,
                                     f"{type(error).__name__}: {error}")
                    dead.add(url)
                    unresolved = items
                    if self.peer_cache:
                        # Before re-simulating, ask the survivors: the dead
                        # shard's finished results were written through to
                        # their failover targets, so most already-simulated
                        # keys come back as cache answers.
                        unresolved = await self._probe_survivors(
                            items, dead, slots)
                    self._bump("shard_retries", len(unresolved))
                    self._retries_total.inc(len(unresolved))
                    remaining.extend(unresolved)
            await _flush()
        if remaining:  # pragma: no cover - every round kills >= 1 shard
            raise RequestError(503, "cluster failed to place every point")
        return [entry for entry in slots if entry is not None]

    async def _probe_survivors(self, items: List[_Pending],
                               dead: set,
                               slots: List[Optional[Dict[str, object]]]
                               ) -> List[_Pending]:
        """Hunt a dead shard's results in the survivors' cache tiers.

        For each re-routed point, ask the surviving shards' ``GET
        /cache/<key>`` endpoints in ring-preference order (the first entry
        is exactly where write-through replicated the key).  A hit fills
        the point's slot with status ``"cached"`` -- no re-simulation; the
        returned list is the points no survivor could answer.
        """

        async def _probe(item: _Pending) -> Optional[_Pending]:
            started = time.monotonic()
            for url in self.ring.preference(item.key, exclude=dead):
                try:
                    reply = await fetch(
                        url, "GET", f"/cache/{item.key}",
                        timeout_s=self.peer_timeout_s)
                    if reply.status != 200:
                        continue
                    payload = reply.json()
                    result = payload["result"]
                    if not isinstance(result, Mapping):
                        continue
                except (ConnectionError, OSError, asyncio.TimeoutError,
                        ValueError, KeyError):
                    continue
                slots[item.index] = {"key": item.key, "status": "cached",
                                     "result": dict(result)}
                self._bump("peer_cache_answers")
                self._peer_cache_hits_total.inc()
                self._peer_probe_seconds.observe(time.monotonic() - started)
                return None
            self._peer_cache_misses_total.inc()
            self._peer_probe_seconds.observe(time.monotonic() - started)
            return item

        missed = await asyncio.gather(*(_probe(item) for item in items))
        return [item for item in missed if item is not None]

    # -- explore (strategies local, simulations sharded) ----------------------

    def _explore_request(self, payload: Mapping[str, object]):
        """Validate an explore payload; returns (space, strategy, budget).

        ``options`` is the uniform strategy-option mapping and ``budget``
        the true-simulation cap -- the same dialect as the serve service
        (legacy top-level ``samples`` / ``seed`` keys keep working).
        """
        from repro.explore.search import strategy_from_request
        from repro.explore.space import SweepSpec

        if "space" not in payload:
            raise RequestError(400, "explore request needs a 'space' sweep "
                                    "spec")
        unknown = set(payload) - {"space", "strategy", "options", "budget",
                                  "samples", "seed", "objectives", "baseline",
                                  "stream"}
        if unknown:
            raise RequestError(
                400, f"unknown explore request keys: {sorted(unknown)}")
        try:
            space = SweepSpec.from_dict(payload["space"])
            strategy, budget = strategy_from_request(payload)
        except (ValueError, KeyError, TypeError) as error:
            raise RequestError(
                400, f"{type(error).__name__}: {error}") from None
        return space, strategy, budget

    def _run_explore(self, payload: Mapping[str, object],
                     emit=None) -> Dict[str, object]:
        """Run one sweep with simulations fanned out to the shards.

        Blocking (runs on an explore thread); ``emit(event, data)`` fires
        per executor batch with brief per-job results -- the SSE hook.
        """
        from repro.explore.engine import explore

        space, strategy, budget = self._explore_request(payload)
        self._bump("explores")
        executor = _ShardedExecutor(self, emit=emit)
        result = explore(
            space,
            strategy=strategy,
            objectives=payload.get(
                "objectives", ("speedup", "energy_efficiency", "area")),
            executor=executor,
            baseline=payload.get("baseline", "dpnn"),
            budget=budget,
        )
        return result.to_dict()

    # -- request handling -----------------------------------------------------

    def _client_id(self, request: HTTPRequest) -> str:
        header = request.headers.get("x-client-id")
        if header:
            return header
        return request.client.rsplit(":", 1)[0]

    def _check_rate(self, request: HTTPRequest) -> None:
        if self.rate_limiter is None:
            return
        decision = self.rate_limiter.check(self._client_id(request))
        if decision.allowed:
            return
        self._bump("rate_limited")
        self._ratelimited_total.inc()
        headers = {}
        if decision.retry_after_s is not None:
            headers["Retry-After"] = str(max(1, int(decision.retry_after_s
                                                    + 0.999)))
        message = ("client quota exhausted" if decision.reason == "quota"
                   else "rate limit exceeded")
        raise _RateLimited(message, headers)

    async def _handle(self, request: HTTPRequest,
                      responder: HTTPResponder) -> None:
        started = time.monotonic()
        path = request.path.rstrip("/") or "/"
        label = "/jobs/<key>" if path.startswith("/jobs/") else path
        self._bump("requests")
        tracer = get_tracer()
        try:
            with tracer.remote_parent(request.headers.get("traceparent")):
                with tracer.span(f"coordinator.{request.method} {label}",
                                 path=path) as span:
                    await self._route(request, responder, path)
                    if span is not None and responder.status is not None:
                        span.set_attr("status", responder.status)
        except _RateLimited as limited:
            await responder.send_json(429, {"error": limited.message},
                                      headers=limited.headers)
        except RequestError as error:
            self._bump("errors")
            if not responder.responded:
                await responder.send_json(error.status,
                                          {"error": error.message})
            else:
                raise
        finally:
            status = responder.status if responder.status is not None else 500
            self._requests_total.inc(path=label, status=str(status))
            self._request_seconds.observe(time.monotonic() - started,
                                          path=label)

    async def _route(self, request: HTTPRequest, responder: HTTPResponder,
                     path: str) -> None:
        method = request.method
        if method == "GET" and path == "/healthz":
            healthy = self.healthy_shards()
            await responder.send_json(200 if healthy else 503, {
                "ok": bool(healthy),
                "role": "coordinator",
                "uptime_s": time.time() - (self.started_at or time.time()),
                "shards": {url: shard.healthy
                           for url, shard in self.shards.items()},
            })
        elif method == "GET" and path == "/stats":
            await responder.send_json(200, await self._stats_payload())
        elif method == "GET" and path == "/metrics":
            await responder.send_text(200, self.metrics.render())
        elif method == "GET" and path == "/trace":
            await responder.send_json(200, await self._trace_payload())
        elif method == "GET" and path == "/networks":
            from repro.serve.service import _networks_payload

            payload = await asyncio.get_running_loop().run_in_executor(
                None, _networks_payload)
            await responder.send_json(200, {"networks": payload})
        elif method == "GET" and path.startswith("/jobs/"):
            await self._proxy_lookup(path[len("/jobs/"):], responder)
        elif method == "POST" and path == "/jobs":
            self._check_rate(request)
            await self._handle_jobs(request, responder)
        elif method == "POST" and path == "/explore":
            self._check_rate(request)
            await self._handle_explore(request, responder)
        elif method == "POST" and path == "/shutdown":
            await responder.send_json(200, {"ok": True, "stopping": True})
            responder.close_after = True
            threading.Thread(target=self.stop, daemon=True).start()
        else:
            self._bump("errors")
            await responder.send_json(404, {"error": f"unknown path "
                                                     f"{request.path!r}"})

    async def _stats_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "role": "coordinator",
            "uptime_s": time.time() - (self.started_at or time.time()),
            "service": self.stats.to_dict(),
            "shards": {url: shard.to_dict()
                       for url, shard in self.shards.items()},
            "ring": {"replicas": self.ring.replicas,
                     "nodes": list(self.ring.nodes)},
            "peer_cache": {"enabled": self.peer_cache,
                           "timeout_s": self.peer_timeout_s,
                           "write_through": self.peer_write_through},
        }
        if self.rate_limiter is not None:
            payload["rate_limiter"] = self.rate_limiter.stats_dict()

        async def _shard_stats(url: str):
            try:
                return url, await fetch_json(url, "GET", "/stats",
                                             timeout_s=5.0)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    RequestError, ValueError):
                return url, None
        gathered = await asyncio.gather(
            *(_shard_stats(url) for url in self.healthy_shards()))
        payload["workers"] = {url: stats for url, stats in gathered
                              if stats is not None}
        return payload

    async def _trace_payload(self) -> Dict[str, object]:
        """Own recorded spans plus every healthy shard's, one flat list.

        Shard spans round-trip through :class:`~repro.obs.trace.Span` so a
        malformed entry from a mid-upgrade worker drops that shard's
        contribution instead of corrupting the merged trace.
        """
        tracer = get_tracer()
        spans = [span.to_dict() for span in tracer.recorder.spans()]

        async def _shard_trace(url: str) -> List[Dict[str, object]]:
            try:
                payload = await fetch_json(url, "GET", "/trace",
                                           timeout_s=5.0)
                return [Span.from_dict(entry).to_dict()
                        for entry in payload.get("spans", [])]
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    RequestError, ValueError, KeyError, TypeError):
                return []
        gathered = await asyncio.gather(
            *(_shard_trace(url) for url in self.healthy_shards()))
        for shard_spans in gathered:
            spans.extend(shard_spans)
        return {"service": tracer.service, "spans": spans}

    async def _proxy_lookup(self, key: str,
                            responder: HTTPResponder) -> None:
        owner = self.ring.node_for(
            key, exclude={url for url, shard in self.shards.items()
                          if not shard.healthy})
        if owner is None:
            raise RequestError(503, "no healthy workers")
        try:
            reply = await fetch(owner, "GET", f"/jobs/{key}", timeout_s=30.0)
        except (ConnectionError, OSError, asyncio.TimeoutError) as error:
            self._mark_shard(owner, False, f"{type(error).__name__}: {error}")
            raise RequestError(503, f"shard {owner} is unreachable") from None
        try:
            payload = reply.json()
        except ValueError:
            raise RequestError(502, f"shard {owner} answered malformed "
                                    f"JSON") from None
        await responder.send_json(reply.status, payload)

    async def _handle_jobs(self, request: HTTPRequest,
                           responder: HTTPResponder) -> None:
        payload = request.json()
        single = "points" not in payload
        if single:
            point = payload.get("point", payload)
            if not isinstance(point, dict) or not point:
                raise RequestError(
                    400, "POST /jobs expects a point object, "
                         "{'point': {...}} or {'points': [...]}")
            points: List[Mapping[str, object]] = [point]
        else:
            points = payload["points"]
            if not isinstance(points, list) or not points:
                raise RequestError(400,
                                   "'points' must be a non-empty JSON array")
        if single or not request.wants("application/x-ndjson"):
            entries = await self._submit_points(points)
            if single:
                await responder.send_json(200, entries[0])
            else:
                await responder.send_json(200, {"results": entries})
            return
        # NDJSON stream: one line per resolved point, submission order,
        # flushed as shard answers land -- then a terminal summary line.
        self._bump("streams")
        await responder.start_stream("application/x-ndjson")

        async def _emit(index: int, entry: Dict[str, object]) -> None:
            self._stream_events_total.inc()
            await responder.write_chunk(
                (json.dumps({"index": index, **entry}) + "\n")
                .encode("utf-8"))

        try:
            entries = await self._submit_points(points, emit=_emit)
        except RequestError as error:
            await responder.write_chunk(
                (json.dumps({"error": error.message,
                             "status": error.status}) + "\n").encode("utf-8"))
            await responder.finish_stream()
            responder.close_after = True
            return
        await responder.write_chunk(
            (json.dumps({"done": True, "count": len(entries)}) + "\n")
            .encode("utf-8"))
        await responder.finish_stream()

    async def _handle_explore(self, request: HTTPRequest,
                              responder: HTTPResponder) -> None:
        payload = request.json()
        stream = bool(payload.get("stream")) or \
            request.wants("text/event-stream")
        loop = asyncio.get_running_loop()
        if not stream:
            # copy_context: run_in_executor loses contextvars, and the
            # sweep's shard submissions should stay in this request's trace.
            context = contextvars.copy_context()
            result = await loop.run_in_executor(
                None, lambda: context.run(self._run_explore, payload))
            await responder.send_json(200, result)
            return

        # Validate up front so a bad request is a plain 400, not a stream.
        space, _strategy, _budget = self._explore_request(payload)
        self._bump("streams")
        handle = _StreamHandle(queue=asyncio.Queue())
        self._streams.add(handle)

        def _push(event: str, data: Dict[str, object]) -> None:
            if self._server.loop is not None and not handle.done.is_set():
                self._server.loop.call_soon_threadsafe(
                    handle.queue.put_nowait, (event, data))

        def _explore_thread() -> None:
            try:
                result = self._run_explore(payload, emit=_push)
                _push("result", result)
                _push("end", {"complete": True})
            except RequestError as error:
                _push("error", {"error": error.message,
                                "status": error.status})
                _push("end", {"complete": False, "reason": "error"})
            except Exception as error:  # noqa: BLE001 - stream must terminate
                _push("error",
                      {"error": f"{type(error).__name__}: {error}"})
                _push("end", {"complete": False, "reason": "error"})
            finally:
                self._explore_threads.discard(threading.current_thread())

        await responder.start_stream("text/event-stream")
        await responder.write_event("start", {
            "strategy": payload.get("strategy", "grid"),
            "space_points": space.size,
        })
        self._stream_events_total.inc()
        context = contextvars.copy_context()
        thread = threading.Thread(target=lambda: context.run(_explore_thread),
                                  daemon=True, name="loom-explore-stream")
        self._explore_threads.add(thread)
        thread.start()
        try:
            while True:
                event, data = await handle.queue.get()
                self._stream_events_total.inc()
                await responder.write_event(event, data)
                if event == "end":
                    break
            await responder.finish_stream()
        finally:
            handle.done.set()
            self._streams.discard(handle)
        responder.close_after = True


class _RateLimited(Exception):
    """Internal: a rate-limiter refusal with its response headers."""

    def __init__(self, message: str, headers: Dict[str, str]) -> None:
        super().__init__(message)
        self.message = message
        self.headers = headers


class _ShardedExecutor:
    """JobExecutor facade whose ``run`` fans out through the coordinator.

    Drives :func:`repro.explore.engine.explore` from an explore thread:
    every batch becomes one sharded ``_submit_points`` round trip on the
    coordinator's event loop, and ``emit`` (when streaming) receives one
    ``progress`` event per batch with brief per-job results -- which is how
    a streamed ``/explore`` delivers results while later strategy rounds
    are still simulating.
    """

    def __init__(self, coordinator: ClusterCoordinator, emit=None) -> None:
        self.coordinator = coordinator
        self.emit = emit
        self.stats = ExecutorStats()
        self.cache = None
        self._completed = 0

    def run(self, jobs, engine=None) -> List[NetworkResult]:
        from repro.explore.space import job_to_point

        if self.coordinator._stopping:
            raise RuntimeError("coordinator is shutting down")
        loop = self.coordinator.loop
        if loop is None:
            raise RuntimeError("coordinator is not running")
        jobs = list(jobs)
        points = [job_to_point(job) for job in jobs]
        self.stats.submitted += len(jobs)
        future = asyncio.run_coroutine_threadsafe(
            self.coordinator._submit_points(points), loop)
        entries = future.result(timeout=self.coordinator.shard_timeout_s)
        results = []
        brief = []
        for entry in entries:
            if entry["status"] == "executed":
                self.stats.record_execution(entry["key"])
            else:  # "cached" or "coalesced": a shard reused a result
                self.stats.cache_hits += 1
            result = NetworkResult.from_dict(entry["result"])
            results.append(result)
            brief.append({"key": entry["key"], "status": entry["status"],
                          "network": result.network,
                          "accelerator": result.accelerator,
                          "cycles": result.total_cycles()})
        self._completed += len(results)
        if self.emit is not None:
            self.emit("progress", {"batch_jobs": len(jobs),
                                   "completed": self._completed,
                                   "results": brief})
        return results

    def close(self) -> None:
        """Executor-protocol parity; nothing is held locally."""
