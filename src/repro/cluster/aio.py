"""Minimal asyncio HTTP/1.1 plumbing for the cluster (stdlib only).

The single-box service spends a thread per connection; the cluster's front
door replaces that with one event loop per node on
:func:`asyncio.start_server`.  This module is the shared plumbing both node
kinds use:

* :class:`AsyncHTTPServer` -- accepts connections on its own event loop in
  a background thread (so nodes embed in tests and the CLI exactly like
  :class:`~repro.serve.service.SimulationService` does), parses requests,
  and hands ``(request, responder)`` pairs to an async handler.  Keep-alive
  connections serve sequential requests; slow or idle peers are timed out
  instead of pinning resources.
* :class:`HTTPResponder` -- plain ``Content-Length`` JSON responses, plus
  **chunked** streaming (``start_stream``/``write_chunk``/``finish``) for
  NDJSON result streams and ``text/event-stream`` SSE -- the transfer
  encodings that let ``/explore`` deliver results before a sweep finishes.
* :func:`fetch` -- a small one-request async client (the coordinator's
  shard-facing side): connect, send, parse, close.  No pooling; shard
  fan-out opens a handful of sockets per batch, which localhost handles
  comfortably, and connection-per-request makes dead-worker detection
  immediate.

Nothing here knows about jobs or shards; it is transport only.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, Optional, Tuple

from repro.obs.trace import get_tracer

__all__ = ["AsyncHTTPServer", "HTTPReply", "HTTPRequest", "HTTPResponder",
           "RequestError", "fetch", "fetch_json"]

#: Largest request body a node accepts (mirrors the serve limit).
MAX_BODY_BYTES = 4 * 1024 * 1024
#: Largest request head (request line + headers).
_MAX_HEAD_BYTES = 64 * 1024
#: How long a keep-alive connection may idle between requests.
_KEEPALIVE_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class RequestError(Exception):
    """A malformed or oversized request (maps to 400/413)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HTTPRequest:
    """One parsed request."""

    method: str
    path: str
    headers: Dict[str, str]  # lower-cased names
    body: bytes
    client: str  # peer address, "ip:port"

    def json(self) -> Dict[str, object]:
        if not self.body:
            raise RequestError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(400, f"bad JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise RequestError(400, "request body must be a JSON object")
        return payload

    def wants(self, content_type: str) -> bool:
        """True when the Accept header asks for ``content_type``."""
        return content_type in self.headers.get("accept", "")


@dataclass
class HTTPReply:
    """One parsed response (the client side)."""

    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Dict[str, object]:
        return json.loads(self.body.decode("utf-8"))


class HTTPResponder:
    """Writes exactly one response -- fixed-length or chunked -- per request."""

    def __init__(self, writer: asyncio.StreamWriter, server_tag: str) -> None:
        self._writer = writer
        self._server_tag = server_tag
        self.responded = False
        self.streaming = False
        self.status: Optional[int] = None
        self.close_after = False

    def _head(self, status: int, headers: Dict[str, str]) -> bytes:
        reason = _REASONS.get(status, "OK")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Server: {self._server_tag}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def send(self, status: int, body: bytes, content_type: str,
                   headers: Optional[Dict[str, str]] = None) -> None:
        if self.responded:
            raise RuntimeError("response already sent")
        self.responded = True
        self.status = status
        head = {"Content-Type": content_type,
                "Content-Length": str(len(body))}
        head.update(headers or {})
        self._writer.write(self._head(status, head) + body)
        await self._writer.drain()

    async def send_json(self, status: int, payload: Dict[str, object],
                        headers: Optional[Dict[str, str]] = None) -> None:
        await self.send(status, json.dumps(payload).encode("utf-8"),
                        "application/json", headers)

    async def send_text(self, status: int, text: str,
                        content_type: str = "text/plain; version=0.0.4") -> None:
        # The default content type is the Prometheus exposition format tag.
        await self.send(status, text.encode("utf-8"), content_type)

    # -- chunked streaming ----------------------------------------------------

    async def start_stream(self, content_type: str,
                           headers: Optional[Dict[str, str]] = None) -> None:
        """Begin a chunked response (NDJSON or SSE); write with
        :meth:`write_chunk`, end with :meth:`finish_stream`."""
        if self.responded:
            raise RuntimeError("response already sent")
        self.responded = True
        self.streaming = True
        self.status = 200
        head = {"Content-Type": content_type,
                "Transfer-Encoding": "chunked",
                "Cache-Control": "no-store"}
        head.update(headers or {})
        self._writer.write(self._head(200, head))
        await self._writer.drain()

    async def write_chunk(self, data: bytes) -> None:
        if not data:
            return  # a zero-size chunk would terminate the stream
        self._writer.write(f"{len(data):x}\r\n".encode("latin-1") + data
                           + b"\r\n")
        await self._writer.drain()

    async def finish_stream(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
        self.streaming = False

    # -- SSE convenience ------------------------------------------------------

    async def write_event(self, event: str, data: Dict[str, object]) -> None:
        """One server-sent event carrying a JSON payload."""
        payload = json.dumps(data)
        await self.write_chunk(
            f"event: {event}\ndata: {payload}\n\n".encode("utf-8"))


async def _read_request(reader: asyncio.StreamReader,
                        client: str) -> Optional[HTTPRequest]:
    """Parse one request; ``None`` on clean EOF before a request line."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise RequestError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise RequestError(413, "request head too large") from None
    if len(head) > _MAX_HEAD_BYTES:
        raise RequestError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise RequestError(400, f"bad request line {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise RequestError(400, f"bad header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length") or 0)
    if length > MAX_BODY_BYTES:
        raise RequestError(413,
                           f"request body too large ({length} bytes, "
                           f"limit {MAX_BODY_BYTES})")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return HTTPRequest(method=method, path=path, headers=headers, body=body,
                       client=client)


Handler = Callable[[HTTPRequest, HTTPResponder], Awaitable[None]]


class AsyncHTTPServer:
    """An asyncio HTTP server running on its own loop in a daemon thread.

    ``handler(request, responder)`` must send exactly one response (fixed or
    streamed).  Handler exceptions map to 500; :class:`RequestError` to its
    status.  ``start()`` binds and returns the URL; ``stop()`` stops
    accepting, lets in-flight handlers finish (bounded), then tears the
    loop down.
    """

    def __init__(self, handler: Handler, host: str = "127.0.0.1",
                 port: int = 0, server_tag: str = "loom-cluster") -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.server_tag = server_tag
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._stopping = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection loop ------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername") or ("?", 0)
        client = f"{peer[0]}:{peer[1]}"
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while not self._stopping:
                try:
                    request = await asyncio.wait_for(
                        _read_request(reader, client),
                        timeout=_KEEPALIVE_TIMEOUT_S)
                except (asyncio.TimeoutError, ConnectionError):
                    break
                except RequestError as error:
                    responder = HTTPResponder(writer, self.server_tag)
                    with _swallow_connection_errors():
                        await responder.send_json(
                            error.status, {"error": error.message},
                            headers={"Connection": "close"})
                    break
                if request is None:
                    break
                responder = HTTPResponder(writer, self.server_tag)
                try:
                    await self.handler(request, responder)
                except RequestError as error:
                    await self._best_effort_error(responder, error.status,
                                                  error.message)
                except ConnectionError:
                    break
                except Exception as error:
                    await self._best_effort_error(
                        responder, 500, f"{type(error).__name__}: {error}")
                if not responder.responded:
                    await self._best_effort_error(responder, 500,
                                                  "handler sent no response")
                if responder.streaming or responder.close_after or \
                        request.headers.get("connection", "") == "close":
                    break
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _best_effort_error(responder: HTTPResponder, status: int,
                                 message: str) -> None:
        with _swallow_connection_errors():
            if responder.streaming:
                # Mid-stream failure: terminate the stream with an error
                # event so the client sees a clean end, not a hung socket.
                await responder.write_event("error", {"error": message})
                await responder.finish_stream()
                responder.close_after = True
            elif not responder.responded:
                await responder.send_json(status, {"error": message})

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> str:
        """Bind on a fresh event loop in a daemon thread; returns the URL."""
        if self.loop is not None:
            raise RuntimeError("server already started")
        self.loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list = []

        async def _bind() -> None:
            try:
                self._server = await asyncio.start_server(
                    self._serve_connection, host=self.host, port=self.port)
                self.port = self._server.sockets[0].getsockname()[1]
            except OSError as error:
                failure.append(error)
            finally:
                started.set()

        def _run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.create_task(_bind())
            self.loop.run_forever()
            # Drain callbacks scheduled during shutdown, then close.
            self.loop.run_until_complete(asyncio.sleep(0))
            self.loop.close()

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name=self.server_tag)
        self._thread.start()
        started.wait(timeout=10.0)
        if failure:
            self.stop()
            raise failure[0]
        return self.url

    def run_coroutine(self, coroutine) -> "asyncio.Future":
        """Submit a coroutine to the server's loop from any thread."""
        if self.loop is None:
            raise RuntimeError("server is not running")
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop)

    def stop(self, drain_timeout_s: float = 10.0) -> None:
        """Stop accepting, drain in-flight handlers, stop the loop."""
        if self.loop is None:
            return
        self._stopping = True

        async def _shutdown() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            pending = {task for task in self._connections
                       if task is not asyncio.current_task()}
            if pending:
                await asyncio.wait(pending, timeout=drain_timeout_s)
                for task in pending:
                    task.cancel()

        try:
            future = asyncio.run_coroutine_threadsafe(_shutdown(), self.loop)
            future.result(timeout=drain_timeout_s + 5.0)
        except Exception:
            pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.loop = None
        self._server = None
        self._thread = None


class _swallow_connection_errors:
    """``with`` block that ignores peer-went-away errors while responding."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return exc_type is not None and issubclass(
            exc_type, (ConnectionError, OSError, RuntimeError))


# -- the coordinator's shard-facing client -------------------------------------


def _split_url(url: str) -> Tuple[str, int, str]:
    """``http://host:port[/base]`` -> (host, port, base_path)."""
    if not url.startswith("http://"):
        raise ValueError(f"only http:// URLs are supported, got {url!r}")
    rest = url[len("http://"):]
    host_port, slash, base = rest.partition("/")
    host, colon, port = host_port.partition(":")
    if not colon:
        port = "80"
    return host, int(port), ("/" + base if slash else "").rstrip("/")


async def fetch(url: str, method: str = "GET", path: str = "/",
                payload: Optional[Dict[str, object]] = None,
                timeout_s: float = 600.0,
                headers: Optional[Dict[str, str]] = None) -> HTTPReply:
    """One HTTP request against ``url``; connection-per-request.

    Raises ``ConnectionError`` when the peer is unreachable or hangs up
    mid-response and ``asyncio.TimeoutError`` on deadline -- the two signals
    the coordinator's failover path treats as "this shard is down".
    """
    host, port, base = _split_url(url)
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=min(timeout_s, 10.0))
    try:
        body = json.dumps(payload).encode("utf-8") if payload is not None \
            else b""
        head = {
            "Host": f"{host}:{port}",
            "Connection": "close",
            "Content-Length": str(len(body)),
        }
        if payload is not None:
            head["Content-Type"] = "application/json"
        head.update(headers or {})
        # Carry the active trace across the hop (coordinator -> worker,
        # peer-cache lookups) unless the caller pinned its own header.
        get_tracer().inject_headers(head)
        lines = [f"{method} {base + path} HTTP/1.1"]
        lines.extend(f"{name}: {value}" for name, value in head.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()

        raw_head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"),
                                          timeout=timeout_s)
        status_line, *header_lines = raw_head.decode("latin-1").split("\r\n")
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"bad status line from {url}: "
                                  f"{status_line!r}")
        status = int(parts[1])
        reply_headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                reply_headers[name.strip().lower()] = value.strip()
        if "content-length" in reply_headers:
            length = int(reply_headers["content-length"])
            reply_body = await asyncio.wait_for(reader.readexactly(length),
                                                timeout=timeout_s)
        else:
            # Connection: close responses without a length: read to EOF.
            reply_body = await asyncio.wait_for(reader.read(),
                                                timeout=timeout_s)
        return HTTPReply(status=status, headers=reply_headers,
                         body=reply_body)
    except asyncio.IncompleteReadError as error:
        raise ConnectionError(f"{url} hung up mid-response") from error
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def fetch_json(url: str, method: str = "GET", path: str = "/",
                     payload: Optional[Dict[str, object]] = None,
                     timeout_s: float = 600.0,
                     headers: Optional[Dict[str, str]] = None
                     ) -> Dict[str, object]:
    """:func:`fetch` + JSON decode; non-2xx raises ``RequestError``."""
    reply = await fetch(url, method=method, path=path, payload=payload,
                        timeout_s=timeout_s, headers=headers)
    if not 200 <= reply.status < 300:
        try:
            message = reply.json().get("error", reply.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            message = f"HTTP {reply.status}"
        raise RequestError(reply.status, str(message))
    return reply.json()
