"""Per-client token-bucket rate limiting and quotas for the coordinator.

The single-box service bounds *concurrency* (the admission queue); a
cluster front door also needs to bound *request rate per client*, so one
greedy sweep loop cannot starve every other tenant.  The classic
token-bucket does this with two knobs:

* ``rate``  -- sustained requests/second a client may issue;
* ``burst`` -- bucket capacity: how many requests may arrive back-to-back
  after an idle period before the rate starts biting.

Each client (the coordinator keys clients by the ``X-Client-Id`` header,
falling back to the peer address) gets its own lazily-created bucket, plus
an optional lifetime ``quota`` -- a hard cap on total admitted requests,
after which every request is refused.

Refusals carry a ``retry_after_s`` hint: the time until the bucket next
holds a full token (quota exhaustion hints ``None`` -- waiting will not
help).  The clock is injectable so tests are deterministic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["RateLimitDecision", "RateLimiter", "TokenBucket"]


@dataclass(frozen=True)
class RateLimitDecision:
    """Outcome of one admission attempt."""

    allowed: bool
    #: Seconds until a retry can succeed; ``None`` when retrying is futile
    #: (lifetime quota exhausted) or the request was allowed.
    retry_after_s: Optional[float] = None
    #: Why the request was refused ("rate" or "quota"); ``None`` if allowed.
    reason: Optional[str] = None


class TokenBucket:
    """One client's bucket: ``rate`` tokens/s refill, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def try_acquire(self, tokens: float = 1.0) -> RateLimitDecision:
        """Take ``tokens`` if available; otherwise refuse with a retry hint."""
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._updated) * self.rate)
        self._updated = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return RateLimitDecision(allowed=True)
        deficit = tokens - self._tokens
        return RateLimitDecision(allowed=False,
                                 retry_after_s=deficit / self.rate,
                                 reason="rate")


class RateLimiter:
    """Per-client buckets plus an optional lifetime quota.

    Parameters
    ----------
    rate / burst:
        Token-bucket knobs applied to every client independently.
    quota:
        Optional hard cap on *admitted* requests per client over the
        limiter's lifetime (refused requests do not count).  ``None``
        disables quotas.
    clock:
        Injectable monotonic clock (tests pin it).
    """

    def __init__(self, rate: float = 50.0, burst: int = 100,
                 quota: Optional[int] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        # Validate every knob eagerly: buckets are created lazily per
        # client, so a bad rate/burst would otherwise only explode at the
        # first request, deep inside the coordinator's request path.
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if quota is not None and quota < 1:
            raise ValueError(f"quota must be >= 1 (or None), got {quota}")
        self.rate = rate
        self.burst = burst
        self.quota = quota
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._admitted: Dict[str, int] = {}
        self._refused = 0
        self._lock = threading.Lock()

    @property
    def refused(self) -> int:
        """Total refusals across all clients (the /metrics counter source)."""
        return self._refused

    def check(self, client: str, tokens: float = 1.0) -> RateLimitDecision:
        """Admit or refuse one request from ``client``."""
        with self._lock:
            if self.quota is not None and \
                    self._admitted.get(client, 0) >= self.quota:
                self._refused += 1
                return RateLimitDecision(allowed=False, retry_after_s=None,
                                         reason="quota")
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[client] = bucket
            decision = bucket.try_acquire(tokens)
            if decision.allowed:
                self._admitted[client] = self._admitted.get(client, 0) + 1
            else:
                self._refused += 1
            return decision

    def stats_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "quota": self.quota,
                "clients": len(self._buckets),
                "admitted": sum(self._admitted.values()),
                "refused": self._refused,
            }
