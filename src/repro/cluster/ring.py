"""Consistent-hash ring: stable job-key -> shard routing.

The coordinator routes every job by its *content key* so that all
submissions of one (network, accelerator, configuration) land on the same
worker -- and therefore in the same warm executor and SQLite store -- no
matter which client sends them or when.  A plain ``hash(key) % N`` would
reshuffle almost every key when a worker joins or dies; a consistent-hash
ring with virtual nodes moves only ``~1/N`` of the keyspace instead, so a
worker loss invalidates one shard's warmth, not the whole cluster's.

Implementation notes:

* Hashing is ``blake2b`` (stdlib, fast, stable across processes and Python
  versions -- unlike ``hash()``, which is salted per process).
* Each node is planted at ``replicas`` positions ("virtual nodes") so the
  keyspace splits evenly even with 2-3 physical workers.
* Lookup is a binary search over the sorted positions; ``O(log(N *
  replicas))`` per key.
* ``node_for(key, exclude=...)`` supports the coordinator's
  retry-on-another-shard path: when a worker dies mid-batch its keys are
  re-routed exactly as if the node had been removed, without mutating the
  ring (the node may come back at the next health check).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["ConsistentHashRing"]


def _position(token: str) -> int:
    """Stable 64-bit ring position for ``token``."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Maps keys onto nodes; stable under node addition and removal.

    Parameters
    ----------
    nodes:
        Initial node names (any hashable strings -- the cluster uses worker
        base URLs).
    replicas:
        Virtual nodes planted per physical node.  More replicas = smoother
        key distribution at slightly larger lookup tables; 64 keeps the
        per-shard share within a few percent of ideal for small clusters.
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: Set[str] = set()
        self._positions: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Plant ``node`` at its virtual positions (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            position = _position(f"{node}#{replica}")
            index = bisect.bisect(self._positions, position)
            # Ties between distinct nodes are broken deterministically by
            # insertion at the same position in name order; with a 64-bit
            # space they are astronomically unlikely anyway.
            self._positions.insert(index, position)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Remove ``node`` and every virtual position it owns (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [(p, o) for p, o in zip(self._positions, self._owners)
                if o != node]
        self._positions = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- routing --------------------------------------------------------------

    def node_for(self, key: str,
                 exclude: Optional[Set[str]] = None) -> Optional[str]:
        """The node owning ``key``, or ``None`` when no eligible node exists.

        ``exclude`` routes *as if* those nodes were removed (walking
        clockwise past their positions), which is exactly the re-route a
        failed shard's keys take -- without mutating the ring, so the node's
        ownership is restored the moment it stops being excluded.
        """
        if not self._positions:
            return None
        eligible = self._nodes - (exclude or set())
        if not eligible:
            return None
        start = bisect.bisect(self._positions, _position(key)) \
            % len(self._positions)
        for offset in range(len(self._positions)):
            owner = self._owners[(start + offset) % len(self._positions)]
            if owner in eligible:
                return owner
        return None  # pragma: no cover - eligible is non-empty above

    def preference(self, key: str, count: Optional[int] = None,
                   exclude: Optional[Set[str]] = None) -> List[str]:
        """Distinct eligible nodes for ``key`` in ring (failover) order.

        The first entry is :meth:`node_for`'s answer; the second is where
        the key lands if that node dies, and so on -- which makes
        ``preference(key)[1]`` the natural *replica* target for
        write-through (the shard a re-routed key will be asked of), and
        the whole list the coordinator's probe order when hunting a dead
        shard's results among the survivors.  ``count`` caps the list.
        """
        if not self._positions:
            return []
        eligible = self._nodes - (exclude or set())
        if not eligible:
            return []
        start = bisect.bisect(self._positions, _position(key)) \
            % len(self._positions)
        ordered: List[str] = []
        limit = len(eligible) if count is None else min(count, len(eligible))
        for offset in range(len(self._positions)):
            owner = self._owners[(start + offset) % len(self._positions)]
            if owner in eligible and owner not in ordered:
                ordered.append(owner)
                if len(ordered) >= limit:
                    break
        return ordered

    def assign(self, keys: Sequence[str],
               exclude: Optional[Set[str]] = None) -> dict:
        """Group ``keys`` by owning node: ``{node: [key, ...]}`` (key order
        preserved within each node; keys with no eligible owner are absent)."""
        groups: dict = {}
        for key in keys:
            node = self.node_for(key, exclude=exclude)
            if node is not None:
                groups.setdefault(node, []).append(key)
        return groups
