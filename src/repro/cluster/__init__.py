"""repro.cluster: a sharded serve cluster with consistent-hash routing.

``loom-repro serve`` made simulation results a service; this package makes
the service horizontal.  A :class:`ClusterCoordinator` consistent-hash
routes job content keys across N :class:`ClusterWorker` shards (each a warm
:class:`~repro.serve.core.ServiceCore` with its own executor and store),
merges shard answers back in submission order -- bit-identical to an
in-process run -- and streams long sweeps back incrementally (NDJSON for
``/jobs``, SSE for ``/explore``).  Per-client token-bucket rate limiting
guards the front door, every node serves Prometheus-text ``/metrics``, and
a worker that dies mid-batch has its keys re-routed to the survivors.

Start one locally with ``loom-repro cluster --workers 2``, or embed:

>>> from repro.cluster import ClusterCoordinator, ClusterWorker
>>> with ClusterWorker() as w1, ClusterWorker() as w2:
...     with ClusterCoordinator([w1.url, w2.url]) as coordinator:
...         ...  # point ServeClient / RemoteExecutor at coordinator.url
"""

from repro.cluster.aio import (
    AsyncHTTPServer,
    HTTPReply,
    HTTPRequest,
    HTTPResponder,
    RequestError,
    fetch,
    fetch_json,
)
from repro.cluster.coordinator import ClusterCoordinator, ShardState
from repro.cluster.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.cluster.peercache import PeerCacheBackend
from repro.cluster.ratelimit import RateLimitDecision, RateLimiter, TokenBucket
from repro.cluster.ring import ConsistentHashRing
from repro.cluster.worker import ClusterWorker

__all__ = [
    "AsyncHTTPServer",
    "ClusterCoordinator",
    "ClusterWorker",
    "ConsistentHashRing",
    "Counter",
    "Gauge",
    "HTTPReply",
    "HTTPRequest",
    "HTTPResponder",
    "Histogram",
    "MetricsRegistry",
    "PeerCacheBackend",
    "RateLimitDecision",
    "RateLimiter",
    "RequestError",
    "ShardState",
    "TokenBucket",
    "fetch",
    "fetch_json",
]
