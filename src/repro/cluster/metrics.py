"""Back-compat alias: the metrics instruments now live in ``repro.obs``.

This module predates the unified observability layer; every tier (serve,
cluster, executor) now shares :mod:`repro.obs.metrics`.  Existing imports
of ``repro.cluster.metrics`` keep working through this re-export.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    PEER_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS", "PEER_LATENCY_BUCKETS"]
