"""Cluster-shared cache tier: ring-routed peer lookups behind a local store.

Cluster shards were shared-nothing through PR 7: each worker's warm
:class:`~repro.serve.store.SQLiteResultStore` answered only the keys that
worker had simulated itself, so a failover or ring change that re-routed a
key to another shard paid for a fresh simulation -- throwing away exactly
the warm-store amortisation that makes ``serve`` worth running.

:class:`PeerCacheBackend` turns the N private stores into one cluster-wide
result cache.  It implements the :class:`~repro.sim.jobs.cache.CacheBackend`
protocol and layers the shard's *local* tier (its SQLite store, or a small
in-memory LRU when the shard runs storeless) in front of a *peer* tier:

* **load** -- a local miss asks the key's ring-preferred peer (the node a
  re-routed key would land on) over ``GET /cache/<key>`` before the caller
  pays for a simulation.  Peer answers are copied into the local tier, so
  each key crosses the network at most once per shard.
* **single-flight** -- concurrent misses of one key share one peer fetch;
  followers wait on the leader's outcome instead of stampeding the peer.
* **timeout budget** -- every peer lookup has a strict deadline
  (``timeout_s``); a slow or dead peer degrades gracefully to local
  compute, and a connection-refused peer is put on a short cooldown so a
  dead shard does not tax every subsequent miss with a full timeout.
* **write-through** -- a freshly stored result is replicated (fire and
  forget) to the key's failover target: the ring owner when this shard is
  not the owner, or the ring *successor* when it is.  That is precisely
  the shard the key will be re-routed to if this one dies, which is what
  keeps re-routed keys warm across failover.

The peer target for both directions is ``ring.node_for(key,
exclude={self})``: for a non-owner that is the owner; for the owner it is
the failover successor.  One expression covers lookup and replication.

The backend runs its network I/O on a private asyncio loop in a daemon
thread (reusing :func:`repro.cluster.aio.fetch`), so it can be driven from
the synchronous :class:`~repro.sim.jobs.cache.ResultCache` / executor path
without touching the worker's own event loop.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.cluster.aio import fetch
from repro.obs.metrics import PEER_LATENCY_BUCKETS, MetricsRegistry
from repro.cluster.ring import ConsistentHashRing
from repro.sim.jobs.cache import CacheBackend
from repro.sim.results import NetworkResult

__all__ = ["PeerCacheBackend"]


class _Flight:
    """One in-flight peer fetch other misses of the same key can join."""

    __slots__ = ("event", "result")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[NetworkResult] = None


class _MemoryTier(CacheBackend):
    """Bounded in-memory local tier for storeless shards.

    A shard started with ``--no-store`` has no SQLite store to hold peer
    answers and write-through replicas; this small LRU dict stands in so
    the peer tier still works (replicas must land *somewhere* for failover
    to find them).
    """

    name = "memory tier"
    keeps_spec = False

    def __init__(self, max_entries: int = 512) -> None:
        super().__init__()
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, NetworkResult]" = OrderedDict()
        self._lock = threading.Lock()

    def load(self, key: str) -> Optional[NetworkResult]:
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
            return result

    def store(self, key: str, result: NetworkResult,
              spec: Optional[dict] = None) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class PeerCacheBackend(CacheBackend):
    """Ring-routed peer tier layered behind a shard's local store.

    Parameters
    ----------
    local:
        The shard's local tier (typically its
        :class:`~repro.serve.store.SQLiteResultStore`).  ``None`` installs
        a bounded in-memory tier so storeless shards can still hold peer
        answers and write-through replicas.
    ring / self_url:
        Ring membership and this shard's own URL.  Both may be deferred to
        :meth:`configure` (the worker learns membership from the
        coordinator's ``POST /ring``); until configured, the backend
        behaves exactly like its local tier.
    timeout_s:
        Strict budget for one peer lookup, queueing included.  On expiry
        the lookup is abandoned (counted in ``peer_timeouts``) and the
        caller computes locally.
    write_through:
        Replicate fresh results to the key's failover target so re-routed
        keys stay warm across shard death.  Fire-and-forget; failures are
        counted, never raised.
    dead_peer_cooldown_s:
        After a connection-level failure, skip asking that peer again for
        this long (a dead shard should cost one timeout, not one per miss).
    metrics:
        Optional :class:`MetricsRegistry` to surface
        ``loom_peer_cache_{hits,misses,timeouts}_total`` counters and the
        ``loom_peer_cache_fetch_seconds`` histogram on ``/metrics``.
    """

    name = "peer cache"

    def __init__(self, local: Optional[CacheBackend] = None,
                 ring: Optional[ConsistentHashRing] = None,
                 self_url: str = "",
                 timeout_s: float = 1.0,
                 write_through: bool = True,
                 dead_peer_cooldown_s: float = 2.0,
                 metrics: Optional[MetricsRegistry] = None,
                 max_memory_entries: int = 512) -> None:
        super().__init__()
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.local = local if local is not None \
            else _MemoryTier(max_memory_entries)
        self.keeps_spec = self.local.keeps_spec
        self.ring = ring
        self.self_url = self_url.rstrip("/")
        self.timeout_s = timeout_s
        self.write_through = write_through
        self.dead_peer_cooldown_s = dead_peer_cooldown_s
        #: Peer-tier counters (plain ints; /stats + tests read them).
        self.peer_hits = 0
        self.peer_misses = 0
        self.peer_timeouts = 0
        self.peer_writes = 0
        self.peer_write_errors = 0
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Flight] = {}
        self._cooldown_until: Dict[str, float] = {}
        self._pending_writes: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._closed = False
        self._hits_metric = self._misses_metric = None
        self._timeouts_metric = self._fetch_seconds = None
        if metrics is not None:
            self._hits_metric = metrics.counter(
                "loom_peer_cache_hits_total",
                "Local misses answered by a peer shard's cache.")
            self._misses_metric = metrics.counter(
                "loom_peer_cache_misses_total",
                "Peer lookups the owning shard could not answer.")
            self._timeouts_metric = metrics.counter(
                "loom_peer_cache_timeouts_total",
                "Peer lookups abandoned because the peer was slow or dead.")
            self._fetch_seconds = metrics.histogram(
                "loom_peer_cache_fetch_seconds",
                "Peer cache fetch latency in seconds (hits and misses).",
                buckets=PEER_LATENCY_BUCKETS)

    # -- membership -----------------------------------------------------------

    def configure(self, nodes: List[str], self_url: Optional[str] = None,
                  replicas: int = 64) -> None:
        """(Re)build the ring over ``nodes``; idempotent membership update.

        ``replicas`` must match the coordinator's ring or the two sides
        would disagree about key ownership.
        """
        ring = ConsistentHashRing((url.rstrip("/") for url in nodes),
                                  replicas=replicas)
        with self._lock:
            self.ring = ring
            if self_url is not None:
                self.self_url = self_url.rstrip("/")
            self._cooldown_until.clear()

    def peer_for(self, key: str) -> Optional[str]:
        """The peer worth asking (and replicating to) for ``key``.

        The first ring node that is not this shard: the key's owner when
        we are not it, its failover successor when we are.  ``None`` when
        the ring is unconfigured or holds no other node.
        """
        ring = self.ring
        if ring is None or not self.self_url:
            return None
        return ring.node_for(key, exclude={self.self_url})

    # -- CacheBackend protocol ------------------------------------------------

    def load(self, key: str) -> Optional[NetworkResult]:
        result = self.local.load(key)
        if result is not None:
            return result
        peer = self.peer_for(key)
        if peer is None:
            return None
        deadline = time.monotonic() + self.timeout_s
        with self._lock:
            if time.monotonic() < self._cooldown_until.get(peer, 0.0):
                self.peer_timeouts += 1
                if self._timeouts_metric is not None:
                    self._timeouts_metric.inc()
                return None
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._inflight[key] = flight
        if not leader:
            # Single-flight follower: share the leader's outcome (which may
            # be a miss) instead of issuing a duplicate peer fetch.
            flight.event.wait(max(0.0, deadline - time.monotonic()))
            return flight.result
        try:
            result = self._fetch_from_peer(peer, key)
            if result is not None:
                self.local.store(key, result, None)
            flight.result = result
            return result
        finally:
            flight.event.set()
            with self._lock:
                self._inflight.pop(key, None)

    def store(self, key: str, result: NetworkResult,
              spec: Optional[dict] = None) -> None:
        self.local.store(key, result, spec)
        if not self.write_through:
            return
        peer = self.peer_for(key)
        if peer is not None:
            self._write_through(peer, key, result)

    def contains(self, key: str) -> bool:
        """Local tier only: membership probes must not pay network I/O."""
        return self.local.contains(key)

    def __len__(self) -> int:
        return len(self.local)

    def describe(self) -> str:
        peers = (len(self.ring) - 1) if self.ring is not None else 0
        return f"{self.name} ({max(peers, 0)} peers over " \
               f"{self.local.describe()})"

    def close(self) -> None:
        self.flush_writes(timeout_s=2.0)
        with self._lock:
            self._closed = True
            loop, thread = self._loop, self._loop_thread
            self._loop = self._loop_thread = None
        if loop is not None:
            # Cancel and drain any still-pending fetch before stopping the
            # loop, so their transports close on a live loop instead of
            # complaining from the garbage collector.
            async def _drain() -> None:
                tasks = [task for task in asyncio.all_tasks()
                         if task is not asyncio.current_task()]
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)

            try:
                asyncio.run_coroutine_threadsafe(
                    _drain(), loop).result(timeout=5.0)
            except (concurrent.futures.TimeoutError, RuntimeError):
                pass  # best effort: the loop stops either way
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=5.0)
        self.local.close()

    # -- local tier (the worker's /cache endpoints) ---------------------------

    def local_load(self, key: str) -> Optional[NetworkResult]:
        """Local tier only -- what ``GET /cache/<key>`` serves.  Never
        recurses into the peer tier, so peer lookups cannot chain."""
        return self.local.load(key)

    def local_store(self, key: str, result: NetworkResult,
                    spec: Optional[dict] = None) -> None:
        """Local tier only -- what ``PUT /cache/<key>`` (a peer's
        write-through) stores.  Never replicated onward."""
        self.local.store(key, result, spec)

    # -- peer I/O -------------------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            if self._closed:
                raise RuntimeError("peer cache backend is closed")
            if self._loop is not None:
                return self._loop
            loop = asyncio.new_event_loop()
            ready = threading.Event()

            def _run() -> None:
                asyncio.set_event_loop(loop)
                loop.call_soon(ready.set)
                loop.run_forever()
                loop.close()

            thread = threading.Thread(target=_run, daemon=True,
                                      name="loom-peer-cache-io")
            thread.start()
            self._loop = loop
            self._loop_thread = thread
        ready.wait(timeout=5.0)
        return loop

    def _fetch_from_peer(self, peer: str, key: str
                         ) -> Optional[NetworkResult]:
        """One ``GET /cache/<key>`` against ``peer`` under the budget.

        Returns the parsed result on a hit, ``None`` on a miss, a timeout
        or any transport failure -- the caller always has local compute to
        fall back on, so nothing here may raise.
        """
        started = time.monotonic()
        try:
            loop = self._ensure_loop()
            future = asyncio.run_coroutine_threadsafe(
                fetch(peer, "GET", f"/cache/{key}",
                      timeout_s=self.timeout_s), loop)
            try:
                reply = future.result(
                    timeout=max(0.0, self.timeout_s
                                - (time.monotonic() - started)))
            except (concurrent.futures.TimeoutError, asyncio.TimeoutError,
                    TimeoutError):
                # (three spellings: pre-3.11 futures/asyncio timeout classes
                # are distinct from the builtin)
                future.cancel()
                self._note_timeout(peer, started, cooldown=False)
                return None
        except (ConnectionError, OSError, RuntimeError):
            # Connection refused / reset: the peer is dead or restarting.
            # Cool it down so the next misses skip straight to computing.
            self._note_timeout(peer, started, cooldown=True)
            return None
        elapsed = time.monotonic() - started
        if self._fetch_seconds is not None:
            self._fetch_seconds.observe(elapsed)
        if reply.status == 200:
            try:
                result = NetworkResult.from_dict(reply.json()["result"])
            except (ValueError, KeyError, TypeError):
                self.invalid_entries += 1
                self._count_miss()
                return None
            self._count_hit()
            return result
        self._count_miss()
        return None

    def _note_timeout(self, peer: str, started: float,
                      cooldown: bool) -> None:
        if self._fetch_seconds is not None:
            self._fetch_seconds.observe(time.monotonic() - started)
        with self._lock:
            self.peer_timeouts += 1
            if cooldown and self.dead_peer_cooldown_s > 0:
                self._cooldown_until[peer] = (time.monotonic()
                                              + self.dead_peer_cooldown_s)
        if self._timeouts_metric is not None:
            self._timeouts_metric.inc()

    def _count_hit(self) -> None:
        with self._lock:
            self.peer_hits += 1
        if self._hits_metric is not None:
            self._hits_metric.inc()

    def _count_miss(self) -> None:
        with self._lock:
            self.peer_misses += 1
        if self._misses_metric is not None:
            self._misses_metric.inc()

    def _write_through(self, peer: str, key: str,
                       result: NetworkResult) -> None:
        """Fire-and-forget ``PUT /cache/<key>`` replica to ``peer``."""
        try:
            loop = self._ensure_loop()
        except RuntimeError:  # closed mid-store
            return
        payload = {"key": key, "result": result.to_dict()}
        future = asyncio.run_coroutine_threadsafe(
            fetch(peer, "PUT", f"/cache/{key}", payload=payload,
                  timeout_s=self.timeout_s), loop)
        with self._lock:
            self._pending_writes.add(future)

        def _done(completed) -> None:
            with self._lock:
                self._pending_writes.discard(completed)
                try:
                    reply = completed.result()
                    if 200 <= reply.status < 300:
                        self.peer_writes += 1
                    else:
                        self.peer_write_errors += 1
                except (ConnectionError, OSError, asyncio.TimeoutError,
                        concurrent.futures.TimeoutError, TimeoutError,
                        asyncio.CancelledError, ValueError):
                    self.peer_write_errors += 1

        future.add_done_callback(_done)

    def flush_writes(self, timeout_s: float = 5.0) -> bool:
        """Wait for outstanding write-through replications; True when none
        remain.  Tests (and close()) use this for determinism -- the hot
        path never waits on replication."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending_writes:
                    return True
            time.sleep(0.005)
        with self._lock:
            return not self._pending_writes

    # -- introspection --------------------------------------------------------

    def stats_dict(self) -> Dict[str, object]:
        """Peer-tier counters plus the local tier's own stats (the /stats
        ``store`` section on peer-aware shards)."""
        with self._lock:
            payload: Dict[str, object] = {
                "backend": "peer cache",
                "peers": max((len(self.ring) - 1), 0)
                if self.ring is not None else 0,
                "timeout_s": self.timeout_s,
                "write_through": self.write_through,
                "peer_hits": self.peer_hits,
                "peer_misses": self.peer_misses,
                "peer_timeouts": self.peer_timeouts,
                "peer_writes": self.peer_writes,
                "peer_write_errors": self.peer_write_errors,
            }
        payload["local"] = (self.local.stats_dict()
                            if hasattr(self.local, "stats_dict")
                            else {"backend": self.local.describe(),
                                  "entries": len(self.local)})
        return payload
