"""Cluster worker: one shard's asyncio service around a warm ServiceCore.

A worker is the cluster's unit of capacity: it owns one
:class:`~repro.serve.core.ServiceCore` -- and through it one warm
:class:`~repro.sim.jobs.JobExecutor` and (typically) one private
:class:`~repro.serve.store.SQLiteResultStore` -- and answers the shard-facing
subset of the serve API over an :class:`~repro.cluster.aio.AsyncHTTPServer`:

========  =============  ====================================================
method    path           behaviour
========  =============  ====================================================
POST      /jobs          resolve a point batch (same wire format as serve)
GET       /jobs/<key>    look a finished result up by content key
GET       /cache/<key>   **local-tier** cache lookup (the peer-cache wire:
                         never recurses into the peer tier)
PUT       /cache/<key>   store a peer's write-through replica locally
POST      /ring          accept ring membership from the coordinator and
                         activate the peer cache tier
GET       /healthz       liveness probe (the coordinator's health checks)
GET       /stats         core / executor / cache / store counters
GET       /metrics       Prometheus text format
POST      /shutdown      graceful stop (finishes in-flight work first)
========  =============  ====================================================

The event loop only parses and routes; executions run on a small thread
pool (``asyncio.to_thread``-style) because a simulation batch is seconds of
blocking NumPy work, and the core's locks already serialise what must be
serialised.  Request coalescing, bounded-admission 429 backpressure and the
warm-store fast path all come from the shared core -- a shard answers
bit-identically to the single-box ``loom-repro serve``.
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Sequence

from repro.cluster.aio import (
    AsyncHTTPServer,
    HTTPRequest,
    HTTPResponder,
    RequestError,
)
from repro.cluster.peercache import PeerCacheBackend
from repro.obs import MetricsRegistry, get_logger, get_tracer
from repro.serve.core import Backpressure, ServiceCore
from repro.sim.results import NetworkResult

__all__ = ["ClusterWorker"]

_log = get_logger("cluster.worker")


class ClusterWorker:
    """One shard: an asyncio front over a warm :class:`ServiceCore`.

    Parameters
    ----------
    core:
        The shard's :class:`ServiceCore` (owning the executor and store);
        a fresh in-memory-cached core is built when omitted.  The worker
        owns it: ``stop()`` closes it.
    host / port:
        Bind address; ``port=0`` asks the OS for a free port.
    name:
        Label for logs and the coordinator's ``/stats`` shard table
        (defaults to ``worker-<port>`` once bound).
    request_threads:
        Threads servicing blocking core calls.  More threads = more batches
        admitted concurrently (up to the core's ``queue_limit``).
    peer_timeout_s:
        Default per-lookup budget for the peer cache tier; the
        coordinator's ``POST /ring`` payload may override it.
    peer_write_through:
        Default write-through setting for the peer tier (same override).
    """

    def __init__(self, core: Optional[ServiceCore] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 name: Optional[str] = None,
                 request_threads: int = 8,
                 peer_timeout_s: float = 1.0,
                 peer_write_through: bool = True) -> None:
        if request_threads < 1:
            raise ValueError(
                f"request_threads must be >= 1, got {request_threads}")
        self.core = core if core is not None else ServiceCore()
        self.name = name
        self.peer_timeout_s = peer_timeout_s
        self.peer_write_through = peer_write_through
        self.peer_cache: Optional[PeerCacheBackend] = None
        self._peer_lock = threading.Lock()
        self._server = AsyncHTTPServer(self._handle, host=host, port=port,
                                       server_tag="loom-cluster-worker")
        self._pool: Optional[ThreadPoolExecutor] = None
        self._request_threads = request_threads
        self._stop_lock = threading.Lock()
        self._stopped = False
        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "loom_worker_requests_total",
            "HTTP requests handled, by path and status.",
            labelnames=("path", "status"))
        self._request_seconds = self.metrics.histogram(
            "loom_worker_request_seconds",
            "Request latency in seconds, by path.",
            labelnames=("path",))
        self.metrics.gauge(
            "loom_worker_queue_depth",
            "Execution batches currently admitted (queue_limit bounds this).",
            collect=lambda: self.core._pending_batches)
        self.metrics.gauge(
            "loom_worker_inflight_keys",
            "Content keys currently executing (coalescing targets).",
            collect=lambda: len(self.core._inflight))
        self.metrics.gauge(
            "loom_worker_cache_hit_ratio",
            "Fraction of submitted jobs answered without a simulation.",
            collect=self.core.cache_hit_ratio)
        self.metrics.gauge(
            "loom_worker_jobs_executed_total",
            "Simulations actually run by this shard's executor.",
            collect=lambda: self.core.executor.stats.executed)
        self.metrics.gauge(
            "loom_worker_store_answers_total",
            "Submissions answered straight from the warm store.",
            collect=lambda: self.core.stats.store_answers)
        phase_histogram = self.metrics.histogram(
            "loom_executor_phase_seconds",
            "Executor wall time per phase (cache_lookup, layer_table_build, "
            "simulate, transport_scatter).",
            labelnames=("phase",))
        self.core.executor.phase_observer = (
            lambda phase, seconds: phase_histogram.observe(seconds,
                                                           phase=phase))

    # -- lifecycle ------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def url(self) -> str:
        return self._server.url

    def start(self) -> str:
        url = self._server.start()
        if self.name is None:
            self.name = f"worker-{self.port}"
        self._pool = ThreadPoolExecutor(
            max_workers=self._request_threads,
            thread_name_prefix=f"{self.name}-exec")
        self.core.started_at = time.time()
        _log.info("worker.started", name=self.name, url=url,
                  queue_limit=self.core.queue_limit)
        return url

    def stop(self, drain_timeout_s: float = 30.0) -> None:
        """Stop accepting, drain in-flight batches, close executor + store."""
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
        self._server.stop(drain_timeout_s=min(drain_timeout_s, 10.0))
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.core.close(drain_timeout_s)
        _log.info("worker.stopped", name=self.name)

    def request_stop(self) -> None:
        """Trigger a graceful stop without blocking (signal-handler safe)."""
        threading.Thread(target=self.stop, daemon=True,
                         name=f"{self.name}-stop").start()

    def wait_until_stopped(self, poll_s: float = 0.5) -> None:
        """Block until the worker has stopped (the CLI child's main loop)."""
        while not self._stopped or self._server.loop is not None:
            time.sleep(poll_s)

    def __enter__(self) -> "ClusterWorker":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- peer cache tier ------------------------------------------------------

    def configure_peers(self, nodes: Sequence[str],
                        self_url: Optional[str] = None,
                        replicas: int = 64,
                        timeout_s: Optional[float] = None,
                        write_through: Optional[bool] = None) -> int:
        """Activate (or re-shape) the peer cache tier over ``nodes``.

        Swaps the core cache's persistent backend for a
        :class:`PeerCacheBackend` wrapping it, so every local store miss
        consults the key's ring-preferred peer before the executor
        simulates.  Idempotent: a second call updates ring membership in
        place.  Returns the number of peers (nodes excluding this one).
        The coordinator drives this through ``POST /ring``; embedders may
        call it directly.
        """
        own = (self_url or self.url).rstrip("/")
        with self._peer_lock:
            if self.peer_cache is None:
                cache = self.core.cache
                if cache is None:
                    raise RuntimeError(
                        "this worker's executor has no result cache to "
                        "layer a peer tier onto")
                self.peer_cache = PeerCacheBackend(
                    local=cache.backend,
                    self_url=own,
                    timeout_s=(timeout_s if timeout_s is not None
                               else self.peer_timeout_s),
                    write_through=(write_through if write_through is not None
                                   else self.peer_write_through),
                    metrics=self.metrics)
                cache.backend = self.peer_cache
            else:
                if timeout_s is not None:
                    self.peer_cache.timeout_s = timeout_s
                if write_through is not None:
                    self.peer_cache.write_through = write_through
            self.peer_cache.configure(list(nodes), self_url=own,
                                      replicas=replicas)
            return sum(1 for node in nodes if node.rstrip("/") != own)

    def _cache_lookup(self, key: str) -> Optional[NetworkResult]:
        """Local-tier-only lookup behind ``GET /cache/<key>``.

        Checks the cache's memory layer, then the local persistent tier --
        never the peer tier, so a peer's lookup terminates here instead of
        chaining through the ring.
        """
        cache = self.core.cache
        if cache is None:
            return None
        result = cache.peek_memory(key)
        if result is not None:
            return result
        backend = cache.backend
        if isinstance(backend, PeerCacheBackend):
            return backend.local_load(key)
        if backend is not None:
            return backend.load(key)
        return None

    def _cache_store(self, key: str, result: NetworkResult) -> bool:
        """Store a peer's write-through replica in the local tier only."""
        cache = self.core.cache
        if cache is None:
            return False
        backend = cache.backend
        if isinstance(backend, PeerCacheBackend):
            backend.local_store(key, result, None)
        elif backend is not None:
            backend.store(key, result, None)
        else:
            # Memory-only worker without a peer tier yet: remember the
            # replica in the memory layer so lookups can still serve it.
            cache.put(key, result)
        return True

    # -- request handling -----------------------------------------------------

    async def _in_thread(self, fn, *args):
        """Run a blocking core call on the worker pool.

        The call is bound to a snapshot of the current (asyncio-task)
        context: pool threads do not inherit contextvars, and without the
        snapshot executor spans opened inside ``fn`` would start fresh
        traces instead of joining the request's.
        """
        if self._pool is None:
            raise RuntimeError("worker is not running")
        loop = self._server.loop
        context = contextvars.copy_context()
        return await loop.run_in_executor(
            self._pool, lambda: context.run(fn, *args))

    async def _handle(self, request: HTTPRequest,
                      responder: HTTPResponder) -> None:
        started = time.monotonic()
        path = request.path.rstrip("/") or "/"
        if path.startswith("/jobs/"):
            label = "/jobs/<key>"
        elif path.startswith("/cache/"):
            label = "/cache/<key>"
        else:
            label = path
        tracer = get_tracer()
        try:
            with tracer.remote_parent(request.headers.get("traceparent")):
                with tracer.span(f"worker.{request.method} {label}",
                                 path=path, worker=self.name or "") as span:
                    await self._route(request, responder, path)
                    if span is not None and responder.status is not None:
                        span.set_attr("status", responder.status)
        finally:
            status = responder.status if responder.status is not None else 500
            self._requests_total.inc(path=label, status=str(status))
            self._request_seconds.observe(time.monotonic() - started,
                                          path=label)

    async def _route(self, request: HTTPRequest, responder: HTTPResponder,
                     path: str) -> None:
        method = request.method
        if method == "GET" and path == "/healthz":
            await responder.send_json(200, {
                "ok": True,
                "role": "worker",
                "name": self.name,
                "uptime_s": time.time() - (self.core.started_at or
                                           time.time()),
            })
        elif method == "GET" and path == "/stats":
            payload = await self._in_thread(self.core.stats_dict)
            payload["role"] = "worker"
            payload["name"] = self.name
            await responder.send_json(200, payload)
        elif method == "GET" and path == "/metrics":
            await responder.send_text(200, self.metrics.render())
        elif method == "GET" and path == "/trace":
            tracer = get_tracer()
            await responder.send_json(200, {
                "service": self.name or tracer.service,
                "spans": [span.to_dict()
                          for span in tracer.recorder.spans()],
            })
        elif method == "GET" and path.startswith("/jobs/"):
            key = path[len("/jobs/"):]
            status, result = await self._in_thread(self.core.lookup, key)
            if status == "done":
                await responder.send_json(200, {"key": key, "status": "done",
                                                "result": result.to_dict()})
            elif status == "pending":
                await responder.send_json(202, {"key": key,
                                                "status": "pending"})
            else:
                self.core._bump("errors")
                await responder.send_json(404,
                                          {"error": f"no result for key "
                                                    f"{key!r}"})
        elif method == "GET" and path.startswith("/cache/"):
            key = path[len("/cache/"):]
            result = await self._in_thread(self._cache_lookup, key)
            if result is not None:
                await responder.send_json(200, {"key": key,
                                                "result": result.to_dict()})
            else:
                await responder.send_json(404,
                                          {"error": f"no local result for "
                                                    f"key {key!r}"})
        elif method == "PUT" and path.startswith("/cache/"):
            key = path[len("/cache/"):]
            payload = request.json()
            try:
                result = NetworkResult.from_dict(payload["result"])
            except (ValueError, KeyError, TypeError) as error:
                raise RequestError(
                    400, f"bad write-through payload: "
                         f"{type(error).__name__}: {error}") from None
            stored = await self._in_thread(self._cache_store, key, result)
            await responder.send_json(200, {"ok": True, "stored": stored})
        elif method == "POST" and path == "/ring":
            payload = request.json()
            nodes = payload.get("nodes")
            if not isinstance(nodes, list) or not nodes or \
                    not all(isinstance(node, str) for node in nodes):
                raise RequestError(
                    400, "'nodes' must be a non-empty list of worker URLs")
            timeout_ms = payload.get("timeout_ms")
            peers = await self._in_thread(
                lambda: self.configure_peers(
                    nodes,
                    self_url=payload.get("self"),
                    replicas=int(payload.get("replicas", 64)),
                    timeout_s=(float(timeout_ms) / 1000.0
                               if timeout_ms is not None else None),
                    write_through=payload.get("write_through")))
            await responder.send_json(200, {"ok": True, "peers": peers,
                                            "self": self.peer_cache.self_url})
        elif method == "POST" and path == "/jobs":
            await self._handle_jobs(request, responder)
        elif method == "POST" and path == "/shutdown":
            await responder.send_json(200, {"ok": True, "stopping": True})
            responder.close_after = True
            # The server cannot tear itself down from inside a handler; a
            # plain thread does it once this response is on the wire.
            self.request_stop()
        else:
            self.core._bump("errors")
            await responder.send_json(404,
                                      {"error": f"unknown path "
                                                f"{request.path!r}"})

    async def _handle_jobs(self, request: HTTPRequest,
                           responder: HTTPResponder) -> None:
        payload = request.json()
        single = "points" not in payload
        if single:
            point = payload.get("point", payload)
            if not isinstance(point, dict) or not point:
                raise ValueError(
                    "POST /jobs expects a point object, {'point': {...}} or "
                    "{'points': [...]}"
                )
            points = [point]
        else:
            points = payload["points"]
            if not isinstance(points, list) or not points:
                raise ValueError("'points' must be a non-empty JSON array")
        self.core._bump("requests")
        try:
            submitted = await self._in_thread(self.core.submit_points, points)
        except Backpressure as bp:
            self.core._bump("errors")
            await responder.send_json(
                429, {"error": str(bp)},
                headers={"Retry-After": str(bp.retry_after_s)})
            return
        except (ValueError, KeyError, TypeError) as error:
            self.core._bump("errors")
            await responder.send_json(
                400, {"error": f"{type(error).__name__}: {error}"})
            return
        except TimeoutError as error:
            self.core._bump("errors")
            await responder.send_json(504, {"error": str(error)})
            return
        if single:
            await responder.send_json(200, submitted[0].to_dict())
        else:
            await responder.send_json(200, {
                "results": [entry.to_dict() for entry in submitted],
            })

    def stats_dict(self) -> Dict[str, object]:
        payload = self.core.stats_dict()
        payload["role"] = "worker"
        payload["name"] = self.name
        return payload


def worker_process_main(ready_queue, store_path: Optional[str] = None,
                        queue_limit: int = 8,
                        max_memory_entries: int = 512,
                        host: str = "127.0.0.1", port: int = 0,
                        log_level: str = "info",
                        log_json: bool = False) -> None:
    """Entry point for one ``loom-repro cluster`` worker child process.

    Builds a :class:`ClusterWorker` around a fresh executor (backed by a
    private SQLite store when ``store_path`` is given), reports the bound
    URL through ``ready_queue``, and serves until a ``POST /shutdown`` or
    SIGTERM/SIGINT stops it.  Module-level so ``multiprocessing`` spawn
    contexts can import it by reference.  ``log_level`` / ``log_json``
    forward the parent CLI's logging flags into the child (spawn contexts
    start with default logging otherwise).
    """
    import signal

    from repro.obs import Tracer, configure_logging, set_tracer
    from repro.serve.store import SQLiteResultStore
    from repro.sim.jobs import JobExecutor
    from repro.sim.jobs.cache import ResultCache

    configure_logging(level=log_level, json_output=log_json)
    backend = SQLiteResultStore(store_path) if store_path else None
    executor = JobExecutor(
        cache=ResultCache(backend=backend,
                          max_memory_entries=max_memory_entries))
    worker = ClusterWorker(core=ServiceCore(executor=executor,
                                            queue_limit=queue_limit),
                           host=host, port=port)
    url = worker.start()
    # Name this process's spans after the shard so a merged Chrome trace
    # shows one row per worker instead of an undifferentiated "loom".
    set_tracer(Tracer(service=worker.name or "worker"))
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, lambda *_: worker.request_stop())
        except ValueError:  # pragma: no cover - not the main thread
            break
    ready_queue.put(url)
    worker.wait_until_stopped()
