"""Network container: a DAG of layers with shape resolution and precision binding.

Networks are built by appending layers; each layer consumes either the
previous layer's output (the common case) or explicitly named earlier layers
(used for GoogLeNet's inception branches, where several convolutions read the
same module input and a :class:`~repro.nn.layers.Concat` merges the branches).

Once built, :meth:`Network.compute_layers` yields the resolved convolutional
and fully-connected layers -- each with its input/output shape, MAC count,
weight count and (optionally) its bound per-layer precision -- which is the
exact information the accelerator models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nn.layers import (
    Add,
    Concat,
    Conv2D,
    FullyConnected,
    Layer,
    MatMul,
    TensorShape,
)
from repro.quant.precision import (
    BASELINE_PRECISION,
    LayerPrecision,
    NetworkPrecisionProfile,
)

__all__ = ["Network", "LayerWithPrecision"]


@dataclass
class _Node:
    """Internal record: a layer plus the names of the layers feeding it."""

    layer: Layer
    inputs: Tuple[str, ...]


@dataclass
class LayerWithPrecision:
    """A resolved compute layer, ready for an accelerator model.

    Attributes
    ----------
    layer:
        The underlying :class:`Conv2D` or :class:`FullyConnected` layer.
    input_shape / output_shape:
        Resolved activation shapes.
    precision:
        The per-layer precision bound from a profile; defaults to the 16-bit
        baseline when no profile is attached.
    """

    layer: Layer
    input_shape: TensorShape
    output_shape: TensorShape
    precision: LayerPrecision = field(
        default_factory=lambda: LayerPrecision(
            activation_bits=BASELINE_PRECISION, weight_bits=BASELINE_PRECISION
        )
    )

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def is_conv(self) -> bool:
        return self.layer.is_conv

    @property
    def is_fc(self) -> bool:
        return self.layer.is_fc

    @property
    def is_matmul(self) -> bool:
        return self.layer.is_matmul

    @property
    def kind(self) -> str:
        """Reporting kind: ``"conv"``, ``"fc"`` or ``"matmul"``."""
        return self.layer.kind

    # Derived quantities are cached: one resolved layer is simulated by many
    # accelerator designs (and, via the job pipeline, shared across
    # experiments), and shapes never change after resolution.

    @cached_property
    def macs(self) -> int:
        return self.layer.macs(self.input_shape)

    @cached_property
    def weight_count(self) -> int:
        if isinstance(self.layer, (Conv2D, FullyConnected, MatMul)):
            return self.layer.weight_count_for(self.input_shape)
        return 0

    @cached_property
    def input_activations(self) -> int:
        return self.input_shape.size

    @cached_property
    def output_activations(self) -> int:
        return self.output_shape.size


class Network:
    """An ordered DAG of layers.

    Parameters
    ----------
    name:
        Network name (e.g. ``"alexnet"``).
    input_shape:
        Shape of the network input (e.g. ``TensorShape(3, 227, 227)``).
    """

    def __init__(self, name: str, input_shape: TensorShape) -> None:
        self.name = name
        self.input_shape = input_shape
        self._nodes: List[_Node] = []
        self._by_name: Dict[str, _Node] = {}
        self._profile: Optional[NetworkPrecisionProfile] = None

    # -- construction ------------------------------------------------------------

    def add(self, layer: Layer, inputs: Optional[Sequence[str]] = None) -> Layer:
        """Append a layer.

        ``inputs`` names the producing layers; ``None`` means "the previously
        added layer" (or the network input for the first layer).  Multiple
        inputs are accepted by :class:`Concat` (channel merge), :class:`Add`
        (residual sum, at least two sources) and :class:`MatMul` (exactly two
        sources: the ``A`` operand and a dynamic ``B`` operand).
        """
        if layer.name in self._by_name:
            raise ValueError(f"duplicate layer name {layer.name!r} in {self.name}")
        if inputs is None:
            inputs = (self._nodes[-1].layer.name,) if self._nodes else ("__input__",)
        else:
            inputs = tuple(inputs)
            if not inputs:
                raise ValueError(f"layer {layer.name!r}: inputs may not be empty")
        for src in inputs:
            if src != "__input__" and src not in self._by_name:
                raise ValueError(
                    f"layer {layer.name!r} references unknown input {src!r}"
                )
        if len(inputs) > 1 and not isinstance(layer, (Concat, Add, MatMul)):
            raise ValueError(
                f"layer {layer.name!r}: only Concat, Add and MatMul layers "
                f"accept multiple inputs"
            )
        if isinstance(layer, Add) and len(inputs) < 2:
            raise ValueError(
                f"Add layer {layer.name!r} needs at least two inputs, "
                f"got {len(inputs)}"
            )
        if isinstance(layer, MatMul):
            if len(inputs) > 2:
                raise ValueError(
                    f"MatMul layer {layer.name!r} takes one input (learned B) "
                    f"or two inputs (dynamic B), got {len(inputs)}"
                )
            # Reject option/arity combinations that would otherwise be
            # silently ignored (wrong-but-plausible results downstream).
            if len(inputs) == 2 and layer.bias:
                raise ValueError(
                    f"MatMul layer {layer.name!r}: bias is not supported "
                    f"with a dynamic (two-input) B operand"
                )
            if len(inputs) == 1 and layer.transpose_b:
                raise ValueError(
                    f"MatMul layer {layer.name!r}: transpose_b only applies "
                    f"to a dynamic (two-input) B operand"
                )
        node = _Node(layer=layer, inputs=inputs)
        self._nodes.append(node)
        self._by_name[layer.name] = node
        return layer

    # -- introspection ------------------------------------------------------------

    @property
    def layers(self) -> List[Layer]:
        return [node.layer for node in self._nodes]

    def layer(self, name: str) -> Layer:
        try:
            return self._by_name[name].layer
        except KeyError:
            raise KeyError(f"no layer named {name!r} in network {self.name}") from None

    def inputs_of(self, name: str) -> Tuple[str, ...]:
        return self._by_name[name].inputs

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # -- shape resolution ---------------------------------------------------------

    def resolve_shapes(self) -> Dict[str, Tuple[TensorShape, TensorShape]]:
        """Return ``{layer_name: (input_shape, output_shape)}`` for every layer.

        For :class:`Concat` layers the recorded input shape has the summed
        channel count of all sources (which is also validated against the
        layer's declared ``out_channels``).  :class:`Add` layers require all
        sources to agree exactly; a two-input :class:`MatMul` records its
        ``A`` operand's shape and validates the dynamic ``B`` operand against
        the declared head geometry.
        """
        shapes: Dict[str, TensorShape] = {"__input__": self.input_shape}
        resolved: Dict[str, Tuple[TensorShape, TensorShape]] = {}
        for node in self._nodes:
            source_shapes = [shapes[src] for src in node.inputs]
            if isinstance(node.layer, Add):
                if len(set(source_shapes)) != 1:
                    raise ValueError(
                        f"Add {node.layer.name}: all inputs must have the "
                        f"same shape, got {source_shapes}"
                    )
                in_shape = source_shapes[0]
            elif isinstance(node.layer, MatMul) and len(source_shapes) == 2:
                in_shape = source_shapes[0]
                node.layer.validate_b_shape(in_shape, source_shapes[1])
            elif isinstance(node.layer, Concat):
                if any(not s.is_spatial for s in source_shapes):
                    raise ValueError(
                        f"Concat {node.layer.name} requires spatial inputs"
                    )
                heights = {s.height for s in source_shapes}
                widths = {s.width for s in source_shapes}
                if len(heights) != 1 or len(widths) != 1:
                    raise ValueError(
                        f"Concat {node.layer.name}: mismatched spatial dims "
                        f"{source_shapes}"
                    )
                total_channels = sum(s.channels for s in source_shapes)
                if total_channels != node.layer.out_channels:
                    raise ValueError(
                        f"Concat {node.layer.name}: declared out_channels "
                        f"{node.layer.out_channels} but inputs sum to "
                        f"{total_channels}"
                    )
                in_shape = TensorShape(
                    total_channels, source_shapes[0].height, source_shapes[0].width
                )
            else:
                in_shape = source_shapes[0]
            out_shape = node.layer.output_shape(in_shape)
            shapes[node.layer.name] = out_shape
            resolved[node.layer.name] = (in_shape, out_shape)
        return resolved

    def output_shape(self) -> TensorShape:
        """Shape of the final layer's output."""
        if not self._nodes:
            return self.input_shape
        return self.resolve_shapes()[self._nodes[-1].layer.name][1]

    # -- precision binding --------------------------------------------------------

    def attach_profile(self, profile: NetworkPrecisionProfile) -> None:
        """Bind a precision profile to this network.

        Convolutional layers are mapped to profile entries through their
        ``precision_group`` attribute (layers without a group get consecutive
        groups in network order); fully-connected layers are mapped in network
        order.  The profile must provide exactly as many CVL entries as there
        are distinct convolution groups and as many FCL entries as there are
        fully-connected layers.
        """
        conv_groups = self._conv_group_indices()
        num_groups = len(set(conv_groups.values())) if conv_groups else 0
        if profile.num_conv_layers != num_groups:
            raise ValueError(
                f"profile for {profile.network!r} has {profile.num_conv_layers} CVL "
                f"entries but network {self.name!r} has {num_groups} conv groups"
            )
        num_fc = sum(1 for node in self._nodes if node.layer.is_fc)
        if profile.num_fc_layers != num_fc:
            raise ValueError(
                f"profile for {profile.network!r} has {profile.num_fc_layers} FCL "
                f"entries but network {self.name!r} has {num_fc} FC layers"
            )
        self._profile = profile

    @property
    def profile(self) -> Optional[NetworkPrecisionProfile]:
        return self._profile

    def _conv_group_indices(self) -> Dict[str, int]:
        """Map each conv layer name to its precision-group index."""
        groups: Dict[str, int] = {}
        next_auto = 0
        seen_explicit = set()
        for node in self._nodes:
            if not node.layer.is_conv:
                continue
            if node.layer.precision_group is not None:
                groups[node.layer.name] = node.layer.precision_group
                seen_explicit.add(node.layer.precision_group)
            else:
                groups[node.layer.name] = None  # fill below
        # Auto-number the un-grouped convolutions after the explicit ones,
        # keeping network order.  Networks either group everything explicitly
        # (GoogLeNet) or nothing (the rest), so the two schemes do not mix in
        # practice; when they do, auto groups continue after the largest
        # explicit index.
        next_auto = (max(seen_explicit) + 1) if seen_explicit else 0
        for node in self._nodes:
            if node.layer.is_conv and groups[node.layer.name] is None:
                groups[node.layer.name] = next_auto
                next_auto += 1
        return groups

    def num_conv_groups(self) -> int:
        groups = self._conv_group_indices()
        return len(set(groups.values())) if groups else 0

    # -- compute-layer extraction -------------------------------------------------

    def compute_layers(self) -> List[LayerWithPrecision]:
        """Resolved CVLs and FCLs in network order, with bound precisions."""
        shapes = self.resolve_shapes()
        conv_groups = self._conv_group_indices()
        # Sort distinct group indices to map them onto profile entries.
        group_order = sorted(set(conv_groups.values()))
        group_to_entry = {g: i for i, g in enumerate(group_order)}
        result: List[LayerWithPrecision] = []
        fc_index = 0
        baseline = LayerPrecision(
            activation_bits=BASELINE_PRECISION, weight_bits=BASELINE_PRECISION
        )
        for node in self._nodes:
            layer = node.layer
            if not layer.is_compute:
                continue
            in_shape, out_shape = shapes[layer.name]
            precision = baseline
            if self._profile is not None:
                if layer.is_conv:
                    entry = group_to_entry[conv_groups[layer.name]]
                    precision = self._profile.conv_layers[entry]
                else:
                    precision = self._profile.fc_layers[fc_index]
            if layer.is_fc:
                fc_index += 1
            result.append(
                LayerWithPrecision(
                    layer=layer,
                    input_shape=in_shape,
                    output_shape=out_shape,
                    precision=precision,
                )
            )
        return result

    def conv_layers(self) -> List[LayerWithPrecision]:
        return [lw for lw in self.compute_layers() if lw.is_conv]

    def fc_layers(self) -> List[LayerWithPrecision]:
        return [lw for lw in self.compute_layers() if lw.is_fc]

    # -- aggregate statistics -----------------------------------------------------

    def total_macs(self) -> int:
        return sum(lw.macs for lw in self.compute_layers())

    def total_weights(self) -> int:
        return sum(lw.weight_count for lw in self.compute_layers())

    def max_layer_activations(self) -> int:
        """Largest single-layer activation footprint (input + output), in values."""
        return max(
            (lw.input_activations + lw.output_activations
             for lw in self.compute_layers()),
            default=0,
        )

    def summary(self) -> str:
        """Multi-line human-readable summary of the network."""
        shapes = self.resolve_shapes()
        lines = [f"Network {self.name} (input {self.input_shape})"]
        for node in self._nodes:
            in_shape, out_shape = shapes[node.layer.name]
            kind = type(node.layer).__name__
            lines.append(f"  {node.layer.name:<16s} {kind:<15s} "
                         f"{str(in_shape):>14s} -> {str(out_shape):<14s}")
        lines.append(
            f"  total MACs: {self.total_macs():,}  weights: {self.total_weights():,}"
        )
        return "\n".join(lines)
