"""CNN layer IR, shape inference, reference inference and network zoo.

Loom's evaluation is driven entirely by layer *geometry* (how many windows,
filters, inner-product terms each layer has) and by per-layer precisions.
This package provides:

* :mod:`repro.nn.layers` -- dataclasses for the layer types the studied
  networks use (convolution, fully connected, pooling, ReLU, LRN, concat,
  softmax) with full shape inference and work accounting (MACs, weight and
  activation counts).
* :mod:`repro.nn.network` -- an ordered network container with precision
  profile attachment and per-group layer bookkeeping.
* :mod:`repro.nn.inference` -- a NumPy reference forward pass (float and
  quantised) used to verify the functional Loom model and to drive the
  precision profiler.
* :mod:`repro.nn.zoo` -- the six networks the paper evaluates (NiN, AlexNet,
  GoogLeNet, VGG-S, VGG-M, VGG-19) with geometries from their original
  publications.
"""

from repro.nn.layers import (
    Layer,
    Conv2D,
    FullyConnected,
    MatMul,
    Pool2D,
    ReLU,
    LRN,
    Concat,
    Add,
    Softmax,
    TensorShape,
)
from repro.nn.network import Network, LayerWithPrecision
from repro.nn.inference import ReferenceModel, run_reference, run_quantized
from repro.nn.zoo import (
    build_network,
    alexnet,
    nin,
    googlenet,
    vggs,
    vggm,
    vgg19,
    mobilenet_v1,
    resnet18,
    tiny_transformer,
    available_networks,
    modern_networks,
)
from repro.nn.serialization import (
    network_to_dict,
    network_from_dict,
    save_network,
    load_network,
    profile_to_dict,
    profile_from_dict,
)

__all__ = [
    "Layer",
    "Conv2D",
    "FullyConnected",
    "MatMul",
    "Pool2D",
    "ReLU",
    "LRN",
    "Concat",
    "Add",
    "Softmax",
    "TensorShape",
    "Network",
    "LayerWithPrecision",
    "ReferenceModel",
    "run_reference",
    "run_quantized",
    "build_network",
    "alexnet",
    "nin",
    "googlenet",
    "vggs",
    "vggm",
    "vgg19",
    "mobilenet_v1",
    "resnet18",
    "tiny_transformer",
    "available_networks",
    "modern_networks",
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "profile_to_dict",
    "profile_from_dict",
]
