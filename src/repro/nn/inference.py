"""Reference NumPy inference for networks built from the layer IR.

This module provides the functional ground truth used throughout the
repository:

* :class:`ReferenceModel` holds a network together with (synthetic or
  user-supplied) weights and runs float or quantised forward passes.
* :func:`run_reference` / :func:`run_quantized` are small conveniences over
  it.

The quantised path mirrors what the hardware sees: weights and the activations
entering every compute layer are converted to fixed point at the per-layer
precisions (with a per-tensor scale chosen so the values fit), and the rest of
the arithmetic is exact.  The precision profiler scores candidate profiles by
comparing the arg-max of the quantised output against the float output, which
is the paper's top-1 agreement criterion with a synthetic input distribution
standing in for ImageNet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.nn.layers import (
    Add,
    Concat,
    Conv2D,
    FullyConnected,
    Layer,
    LRN,
    MatMul,
    Pool2D,
    ReLU,
    Softmax,
    TensorShape,
)
from repro.nn.network import Network
from repro.quant.fixedpoint import FixedPointFormat, quantize_tensor

__all__ = ["ReferenceModel", "run_reference", "run_quantized", "choose_format"]


def choose_format(data: np.ndarray, bits: int, signed: bool) -> FixedPointFormat:
    """Pick a per-tensor fixed-point format with ``bits`` total bits.

    The number of fractional bits is chosen so the largest magnitude in
    ``data`` is representable without clipping, i.e. the format spends as many
    bits as possible on the fraction, which is how per-layer profile-derived
    formats are constructed in practice.
    """
    data = np.asarray(data, dtype=np.float64)
    # A signed format needs a sign bit plus at least one magnitude bit.
    bits = max(bits, 2) if signed else max(bits, 1)
    max_abs = float(np.max(np.abs(data))) if data.size else 0.0
    sign_bits = 1 if signed else 0
    if max_abs <= 0.0:
        int_bits = 0
    else:
        int_bits = max(0, int(np.ceil(np.log2(max_abs + 1e-12))) + 1)
    frac_bits = max(0, bits - sign_bits - int_bits)
    return FixedPointFormat(total_bits=bits, frac_bits=frac_bits, signed=signed)


def _im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unfold ``x`` of shape (C, H, W) into columns (C*k*k, out_h*out_w)."""
    channels, height, width = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    cols = np.empty((channels * kernel * kernel, out_h * out_w), dtype=x.dtype)
    idx = 0
    for c in range(channels):
        for ky in range(kernel):
            for kx in range(kernel):
                patch = x[c, ky:ky + stride * out_h:stride,
                          kx:kx + stride * out_w:stride]
                cols[idx] = patch.reshape(-1)
                idx += 1
    return cols


def _conv2d(x: np.ndarray, weights: np.ndarray, bias: Optional[np.ndarray],
            layer: Conv2D) -> np.ndarray:
    """Reference grouped 2-D convolution.

    ``x`` has shape (C, H, W); ``weights`` has shape
    (out_channels, in_channels_per_group, k, k).
    """
    channels, height, width = x.shape
    groups = layer.groups
    in_per_group = channels // groups
    out_per_group = layer.out_channels // groups
    out_h = (height + 2 * layer.padding - layer.kernel) // layer.stride + 1
    out_w = (width + 2 * layer.padding - layer.kernel) // layer.stride + 1
    out = np.empty((layer.out_channels, out_h, out_w), dtype=np.float64)
    for g in range(groups):
        x_g = x[g * in_per_group:(g + 1) * in_per_group]
        w_g = weights[g * out_per_group:(g + 1) * out_per_group]
        cols = _im2col(x_g, layer.kernel, layer.stride, layer.padding)
        w_mat = w_g.reshape(out_per_group, -1)
        res = w_mat @ cols
        out[g * out_per_group:(g + 1) * out_per_group] = res.reshape(
            out_per_group, out_h, out_w
        )
    if bias is not None:
        out += bias.reshape(-1, 1, 1)
    return out


def _pool2d(x: np.ndarray, layer: Pool2D) -> np.ndarray:
    channels, height, width = x.shape
    if layer.global_pool:
        if layer.mode == "max":
            return x.max(axis=(1, 2), keepdims=True)
        return x.mean(axis=(1, 2), keepdims=True)
    if layer.padding:
        pad_val = -np.inf if layer.mode == "max" else 0.0
        x = np.pad(
            x,
            ((0, 0), (layer.padding, layer.padding), (layer.padding, layer.padding)),
            constant_values=pad_val,
        )
    out_h = (height + 2 * layer.padding - layer.kernel) // layer.stride + 1
    out_w = (width + 2 * layer.padding - layer.kernel) // layer.stride + 1
    out = np.empty((channels, out_h, out_w), dtype=np.float64)
    for i in range(out_h):
        for j in range(out_w):
            window = x[:, i * layer.stride:i * layer.stride + layer.kernel,
                       j * layer.stride:j * layer.stride + layer.kernel]
            if layer.mode == "max":
                out[:, i, j] = window.max(axis=(1, 2))
            else:
                out[:, i, j] = window.mean(axis=(1, 2))
    return out


def _lrn(x: np.ndarray, layer: LRN) -> np.ndarray:
    channels = x.shape[0]
    half = layer.local_size // 2
    squared = x ** 2
    out = np.empty_like(x)
    for c in range(channels):
        lo, hi = max(0, c - half), min(channels, c + half + 1)
        denom = layer.k + (layer.alpha / layer.local_size) * squared[lo:hi].sum(axis=0)
        out[c] = x[c] / (denom ** layer.beta)
    return out


def _matmul(x: np.ndarray, w: np.ndarray, bias: Optional[np.ndarray],
            layer: MatMul, dynamic_b: bool) -> np.ndarray:
    """Reference token-parallel (multi-head) matrix multiply.

    ``x`` has shape (C, H, W) with token positions spread over H x W.  For a
    learned ``B``, ``w`` has shape (out_features, C // heads).  For a dynamic
    ``B``, ``w`` is the producing layer's (Cb, Hb, Wb) activation tensor and
    each head's slice is reshaped into its weight matrix (transposed for the
    ``Q @ K^T`` orientation).
    """
    channels, height, width = x.shape
    heads = layer.heads
    in_per_group = channels // heads
    out_per_group = layer.out_features // heads
    a = x.reshape(channels, height * width)
    out = np.empty((layer.out_features, height * width), dtype=np.float64)
    if dynamic_b:
        b_mat = w.reshape(w.shape[0], -1)
        b_per_group = w.shape[0] // heads
    for g in range(heads):
        a_g = a[g * in_per_group:(g + 1) * in_per_group]
        if dynamic_b:
            w_g = b_mat[g * b_per_group:(g + 1) * b_per_group]
            if layer.transpose_b:
                w_g = w_g.T
        else:
            w_g = w[g * out_per_group:(g + 1) * out_per_group]
        out[g * out_per_group:(g + 1) * out_per_group] = w_g @ a_g
    if bias is not None:
        out += bias.reshape(-1, 1)
    return out.reshape(layer.out_features, height, width)


def _softmax(x: np.ndarray, layer: Softmax) -> np.ndarray:
    if layer.axis is None:
        flat = x.reshape(-1)
        shifted = flat - flat.max()
        exp = np.exp(shifted)
        return (exp / exp.sum()).reshape(x.shape)
    # axis=0: per-position distributions over (grouped) channels.
    grouped = x.reshape(layer.groups, x.shape[0] // layer.groups, *x.shape[1:])
    shifted = grouped - grouped.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return (exp / exp.sum(axis=1, keepdims=True)).reshape(x.shape)


@dataclass
class _LayerWeights:
    """Weights and bias for one compute layer."""

    weights: np.ndarray
    bias: Optional[np.ndarray]


class ReferenceModel:
    """A network plus concrete weights, runnable in float or fixed point.

    Parameters
    ----------
    network:
        The network to execute.
    weights:
        Optional mapping from compute-layer name to ``(weights, bias)``.
        Missing layers receive synthetic Gaussian weights drawn from ``rng``.
    rng:
        Random generator used for synthetic weights.
    weight_scale:
        Standard deviation of synthetic weights (small, like trained CNN
        weights, so realistic precisions emerge from the profiler).
    """

    def __init__(
        self,
        network: Network,
        weights: Optional[Mapping[str, Tuple[np.ndarray, Optional[np.ndarray]]]] = None,
        rng: Optional[np.random.Generator] = None,
        weight_scale: float = 0.05,
    ) -> None:
        self.network = network
        self._rng = rng or np.random.default_rng(0)
        self._weight_scale = weight_scale
        self._weights: Dict[str, _LayerWeights] = {}
        provided = dict(weights or {})
        shapes = network.resolve_shapes()
        for node_layer in network.layers:
            if not node_layer.is_compute:
                continue
            if (isinstance(node_layer, MatMul)
                    and len(network.inputs_of(node_layer.name)) == 2):
                continue  # dynamic B comes from the graph, not from storage
            in_shape, _ = shapes[node_layer.name]
            if node_layer.name in provided:
                w, b = provided[node_layer.name]
                self._weights[node_layer.name] = _LayerWeights(
                    weights=np.asarray(w, dtype=np.float64),
                    bias=None if b is None else np.asarray(b, dtype=np.float64),
                )
            else:
                self._weights[node_layer.name] = self._synthesize(node_layer, in_shape)

    def _synthesize(self, layer: Layer, in_shape: TensorShape) -> _LayerWeights:
        if isinstance(layer, MatMul):
            # Dynamic-B MatMuls (two network inputs) take B from the graph at
            # run time; learned MatMuls store one (out, in-per-head) matrix.
            shape = (layer.out_features, in_shape.channels // layer.heads)
        elif isinstance(layer, Conv2D):
            in_per_group = in_shape.channels // layer.groups
            shape = (layer.out_channels, in_per_group, layer.kernel, layer.kernel)
        elif isinstance(layer, FullyConnected):
            shape = (layer.out_features, in_shape.size)
        else:  # pragma: no cover - compute layers are only conv/fc/matmul
            raise TypeError(f"cannot synthesise weights for {type(layer).__name__}")
        w = self._rng.normal(0.0, self._weight_scale, size=shape)
        b = self._rng.normal(0.0, self._weight_scale, size=shape[0]) if layer.bias \
            else None
        return _LayerWeights(weights=w, bias=b)

    # -- accessors ---------------------------------------------------------------

    def layer_weights(self, name: str) -> np.ndarray:
        return self._weights[name].weights

    def layer_bias(self, name: str) -> Optional[np.ndarray]:
        return self._weights[name].bias

    # -- execution ---------------------------------------------------------------

    def forward(
        self,
        x: np.ndarray,
        precisions: Optional[Mapping[str, Tuple[int, int]]] = None,
        capture: Optional[Dict[str, np.ndarray]] = None,
    ) -> np.ndarray:
        """Run the network on a single input.

        Parameters
        ----------
        x:
            Input tensor with shape matching the network input shape.
        precisions:
            Optional ``{layer_name: (activation_bits, weight_bits)}``; when
            given, the input activations and weights of each listed compute
            layer are quantised before use.  Layers not listed run in float.
        capture:
            Optional dict that will receive each compute layer's *input*
            activation tensor (after quantisation if any); used to drive the
            functional accelerator models and the dynamic-precision analysis.
        """
        x = np.asarray(x, dtype=np.float64)
        expected = self.network.input_shape
        expected_shape = ((expected.channels, expected.height, expected.width)
                          if expected.is_spatial else (expected.channels,))
        if x.shape != expected_shape:
            raise ValueError(
                f"input shape {x.shape} does not match network input "
                f"{expected_shape}"
            )
        outputs: Dict[str, np.ndarray] = {"__input__": x}
        last_name = "__input__"
        for layer in self.network.layers:
            sources = self.network.inputs_of(layer.name)
            b_value: Optional[np.ndarray] = None
            if isinstance(layer, Concat):
                value = np.concatenate([outputs[s] for s in sources], axis=0)
            elif isinstance(layer, Add):
                value = outputs[sources[0]]
                for src in sources[1:]:
                    value = value + outputs[src]
            else:
                value = outputs[sources[0]]
                if isinstance(layer, MatMul) and len(sources) == 2:
                    b_value = outputs[sources[1]]
            value = self._run_layer(layer, value, precisions, capture,
                                    b_value=b_value)
            outputs[layer.name] = value
            last_name = layer.name
        return outputs[last_name]

    def _run_layer(
        self,
        layer: Layer,
        value: np.ndarray,
        precisions: Optional[Mapping[str, Tuple[int, int]]],
        capture: Optional[Dict[str, np.ndarray]],
        b_value: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if isinstance(layer, (Conv2D, FullyConnected, MatMul)):
            if isinstance(layer, MatMul) and b_value is not None:
                w, b = b_value, None
            else:
                stored = self._weights[layer.name]
                w, b = stored.weights, stored.bias
            if isinstance(layer, FullyConnected):
                value = value.reshape(-1)
            if precisions and layer.name in precisions:
                act_bits, weight_bits = precisions[layer.name]
                act_signed = bool(np.any(value < 0))
                a_fmt = choose_format(value, act_bits, signed=act_signed)
                # A dynamic B operand is an activation tensor but streams
                # through the weight path, so it quantises at weight_bits.
                w_signed = (bool(np.any(w < 0))
                            if isinstance(layer, MatMul) and b_value is not None
                            else True)
                w_fmt = choose_format(w, weight_bits, signed=w_signed)
                value = quantize_tensor(value, a_fmt)
                w = quantize_tensor(w, w_fmt)
            if capture is not None:
                capture[layer.name] = value.copy()
            if isinstance(layer, Conv2D):
                return _conv2d(value, w, b, layer)
            if isinstance(layer, MatMul):
                return _matmul(value, w, b, layer,
                               dynamic_b=b_value is not None)
            out = w @ value
            if b is not None:
                out = out + b
            return out
        if isinstance(layer, ReLU):
            return np.maximum(value, 0.0)
        if isinstance(layer, Pool2D):
            return _pool2d(value, layer)
        if isinstance(layer, LRN):
            return _lrn(value, layer)
        if isinstance(layer, (Concat, Add)):
            return value  # merged in forward()
        if isinstance(layer, Softmax):
            return _softmax(value, layer)
        raise TypeError(f"unsupported layer type {type(layer).__name__}")


def run_reference(network: Network, x: np.ndarray,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Run a float forward pass with synthetic weights."""
    return ReferenceModel(network, rng=rng).forward(x)


def run_quantized(
    network: Network,
    x: np.ndarray,
    precisions: Mapping[str, Tuple[int, int]],
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Run a quantised forward pass with synthetic weights."""
    return ReferenceModel(network, rng=rng).forward(x, precisions=precisions)
