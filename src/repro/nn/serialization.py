"""JSON serialisation of networks and precision profiles.

Lets users define workloads outside the built-in zoo (or snapshot profiler
output) and feed them back into the accelerator models: a network (layers,
wiring, precision groups) and a precision profile round-trip through plain
JSON-compatible dictionaries or files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.nn.layers import (
    Add,
    Concat,
    Conv2D,
    FullyConnected,
    LRN,
    MatMul,
    Pool2D,
    ReLU,
    Softmax,
    TensorShape,
)
from repro.nn.network import Network
from repro.quant.precision import LayerPrecision, NetworkPrecisionProfile

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "profile_to_dict",
    "profile_from_dict",
]

_LAYER_TYPES = {
    "Conv2D": Conv2D,
    "FullyConnected": FullyConnected,
    "MatMul": MatMul,
    "Pool2D": Pool2D,
    "ReLU": ReLU,
    "LRN": LRN,
    "Concat": Concat,
    "Add": Add,
    "Softmax": Softmax,
}

_LAYER_FIELDS = {
    "Conv2D": ("out_channels", "kernel", "stride", "padding", "groups", "bias"),
    "FullyConnected": ("out_features", "bias"),
    "MatMul": ("out_features", "heads", "transpose_b", "bias"),
    "Pool2D": ("kernel", "stride", "padding", "mode", "global_pool"),
    "ReLU": (),
    "LRN": ("local_size", "alpha", "beta", "k"),
    "Concat": ("out_channels",),
    "Add": (),
    "Softmax": ("axis", "groups"),
}


def _shape_to_list(shape: TensorShape) -> List[int]:
    if shape.is_spatial:
        return [shape.channels, shape.height, shape.width]
    return [shape.channels]


def _shape_from_list(values: List[int]) -> TensorShape:
    if len(values) == 3:
        return TensorShape(values[0], values[1], values[2])
    if len(values) == 1:
        return TensorShape(values[0])
    raise ValueError(f"shape must have 1 or 3 entries, got {values}")


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Serialise a network (layers, wiring, precision groups) to a dict."""
    layers = []
    for layer in network.layers:
        kind = type(layer).__name__
        if kind not in _LAYER_TYPES:
            raise TypeError(f"cannot serialise layer type {kind}")
        entry: Dict[str, Any] = {
            "type": kind,
            "name": layer.name,
            "inputs": list(network.inputs_of(layer.name)),
        }
        if layer.precision_group is not None:
            entry["precision_group"] = layer.precision_group
        for field in _LAYER_FIELDS[kind]:
            entry[field] = getattr(layer, field)
        layers.append(entry)
    return {
        "name": network.name,
        "input_shape": _shape_to_list(network.input_shape),
        "layers": layers,
    }


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Reconstruct a network from :func:`network_to_dict` output."""
    try:
        name = data["name"]
        input_shape = _shape_from_list(data["input_shape"])
        layer_entries = data["layers"]
    except KeyError as exc:
        raise ValueError(f"network dict is missing key {exc}") from None
    network = Network(name, input_shape)
    for entry in layer_entries:
        kind = entry.get("type")
        if kind not in _LAYER_TYPES:
            raise ValueError(f"unknown layer type {kind!r}")
        cls = _LAYER_TYPES[kind]
        kwargs = {field: entry[field] for field in _LAYER_FIELDS[kind]
                  if field in entry}
        layer = cls(name=entry["name"],
                    precision_group=entry.get("precision_group"), **kwargs)
        network.add(layer, inputs=entry.get("inputs"))
    return network


def save_network(network: Network, path: Union[str, Path]) -> None:
    """Write a network definition to a JSON file."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2))


def load_network(path: Union[str, Path]) -> Network:
    """Read a network definition from a JSON file."""
    return network_from_dict(json.loads(Path(path).read_text()))


def profile_to_dict(profile: NetworkPrecisionProfile) -> Dict[str, Any]:
    """Serialise a precision profile to a dict."""

    def encode(layers: List[LayerPrecision]) -> List[Dict[str, Any]]:
        encoded = []
        for lp in layers:
            entry: Dict[str, Any] = {
                "activation_bits": lp.activation_bits,
                "weight_bits": lp.weight_bits,
            }
            if lp.effective_weight_bits is not None:
                entry["effective_weight_bits"] = lp.effective_weight_bits
            encoded.append(entry)
        return encoded

    return {
        "network": profile.network,
        "accuracy_target": profile.accuracy_target,
        "conv_layers": encode(profile.conv_layers),
        "fc_layers": encode(profile.fc_layers),
    }


def profile_from_dict(data: Dict[str, Any]) -> NetworkPrecisionProfile:
    """Reconstruct a precision profile from :func:`profile_to_dict` output."""

    def decode(entries: List[Dict[str, Any]]) -> List[LayerPrecision]:
        return [
            LayerPrecision(
                activation_bits=entry["activation_bits"],
                weight_bits=entry["weight_bits"],
                effective_weight_bits=entry.get("effective_weight_bits"),
            )
            for entry in entries
        ]

    try:
        return NetworkPrecisionProfile(
            network=data["network"],
            accuracy_target=data["accuracy_target"],
            conv_layers=decode(data["conv_layers"]),
            fc_layers=decode(data["fc_layers"]),
        )
    except KeyError as exc:
        raise ValueError(f"profile dict is missing key {exc}") from None
