"""Definitions of the network zoo.

The first six networks are the ones the paper evaluates; their geometries
come from each network's original publication (AlexNet, Network-in-Network,
GoogLeNet, VGG-S/M from Chatfield et al., VGG-19).  Only the geometry matters
for Loom's evaluation; weights are synthesised by
:class:`repro.nn.inference.ReferenceModel` when a runnable model is needed.

GoogLeNet is expressed with its full inception branch structure (57
convolutions); each inception module is assigned one *precision group* so the
network lines up with the paper's 11-entry GoogLeNet precision profile
(conv1, conv2, and the nine inception modules).

Three *modern* workloads extend the zoo beyond the paper's CNNs:

* :func:`mobilenet_v1` -- depthwise-separable convolutions (every depthwise
  layer is a ``groups == channels`` :class:`~repro.nn.layers.Conv2D`);
* :func:`resnet18` -- residual topology built on :class:`~repro.nn.layers.
  Add` branches, with an optional ResNeXt-style ``groups`` override for the
  block 3x3 convolutions;
* :func:`tiny_transformer` -- a small transformer encoder whose attention
  and MLP layers are :class:`~repro.nn.layers.MatMul` work (including the
  dynamic-operand ``Q @ K^T`` and ``scores @ V`` multiplies), with a
  configurable head count.

``build_network`` accepts per-network overrides (``groups`` for resnet18,
``heads`` for tiny_transformer) so design-space sweeps can treat them as
axes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.nn.layers import (
    Add,
    Concat,
    Conv2D,
    FullyConnected,
    LRN,
    MatMul,
    Pool2D,
    ReLU,
    Softmax,
    TensorShape,
)
from repro.nn.network import Network

__all__ = [
    "alexnet",
    "nin",
    "googlenet",
    "vggs",
    "vggm",
    "vgg19",
    "mobilenet_v1",
    "resnet18",
    "tiny_transformer",
    "available_networks",
    "modern_networks",
    "build_network",
    "supported_overrides",
]


def _conv_relu(net: Network, name: str, out_channels: int, kernel: int,
               stride: int = 1, padding: int = 0, groups: int = 1,
               precision_group: int = None, inputs=None) -> str:
    """Add a convolution followed by a ReLU; return the ReLU's name."""
    net.add(
        Conv2D(
            name=name,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            groups=groups,
            precision_group=precision_group,
        ),
        inputs=inputs,
    )
    relu_name = f"{name}_relu"
    net.add(ReLU(name=relu_name))
    return relu_name


def alexnet() -> Network:
    """AlexNet (Krizhevsky et al., 2012): 5 CVLs, 3 FCLs, 227x227 input."""
    net = Network("alexnet", TensorShape(3, 227, 227))
    _conv_relu(net, "conv1", 96, kernel=11, stride=4)
    net.add(LRN(name="norm1"))
    net.add(Pool2D(name="pool1", kernel=3, stride=2))
    _conv_relu(net, "conv2", 256, kernel=5, padding=2, groups=2)
    net.add(LRN(name="norm2"))
    net.add(Pool2D(name="pool2", kernel=3, stride=2))
    _conv_relu(net, "conv3", 384, kernel=3, padding=1)
    _conv_relu(net, "conv4", 384, kernel=3, padding=1, groups=2)
    _conv_relu(net, "conv5", 256, kernel=3, padding=1, groups=2)
    net.add(Pool2D(name="pool5", kernel=3, stride=2))
    net.add(FullyConnected(name="fc6", out_features=4096))
    net.add(ReLU(name="fc6_relu"))
    net.add(FullyConnected(name="fc7", out_features=4096))
    net.add(ReLU(name="fc7_relu"))
    net.add(FullyConnected(name="fc8", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


def nin() -> Network:
    """Network-in-Network (Lin et al., 2013): 12 CVLs, no FCLs."""
    net = Network("nin", TensorShape(3, 224, 224))
    _conv_relu(net, "conv1", 96, kernel=11, stride=4)
    _conv_relu(net, "cccp1", 96, kernel=1)
    _conv_relu(net, "cccp2", 96, kernel=1)
    net.add(Pool2D(name="pool1", kernel=3, stride=2))
    _conv_relu(net, "conv2", 256, kernel=5, padding=2)
    _conv_relu(net, "cccp3", 256, kernel=1)
    _conv_relu(net, "cccp4", 256, kernel=1)
    net.add(Pool2D(name="pool2", kernel=3, stride=2))
    _conv_relu(net, "conv3", 384, kernel=3, padding=1)
    _conv_relu(net, "cccp5", 384, kernel=1)
    _conv_relu(net, "cccp6", 384, kernel=1)
    net.add(Pool2D(name="pool3", kernel=3, stride=2))
    _conv_relu(net, "conv4", 1024, kernel=3, padding=1)
    _conv_relu(net, "cccp7", 1024, kernel=1)
    _conv_relu(net, "cccp8", 1000, kernel=1)
    net.add(Pool2D(name="pool4", mode="avg", global_pool=True))
    net.add(Softmax(name="prob"))
    return net


def _inception(net: Network, name: str, source: str, group: int,
               c1: int, c3r: int, c3: int, c5r: int, c5: int, pproj: int) -> str:
    """Add one GoogLeNet inception module; return the output Concat's name."""
    b1 = _conv_relu(net, f"{name}_1x1", c1, kernel=1, precision_group=group,
                    inputs=[source])
    r3 = _conv_relu(net, f"{name}_3x3_reduce", c3r, kernel=1,
                    precision_group=group, inputs=[source])
    b3 = _conv_relu(net, f"{name}_3x3", c3, kernel=3, padding=1,
                    precision_group=group, inputs=[r3])
    r5 = _conv_relu(net, f"{name}_5x5_reduce", c5r, kernel=1,
                    precision_group=group, inputs=[source])
    b5 = _conv_relu(net, f"{name}_5x5", c5, kernel=5, padding=2,
                    precision_group=group, inputs=[r5])
    net.add(Pool2D(name=f"{name}_pool", kernel=3, stride=1, padding=1),
            inputs=[source])
    bp = _conv_relu(net, f"{name}_pool_proj", pproj, kernel=1,
                    precision_group=group, inputs=[f"{name}_pool"])
    out_name = f"{name}_output"
    net.add(Concat(name=out_name, out_channels=c1 + c3 + c5 + pproj),
            inputs=[b1, b3, b5, bp])
    return out_name


def googlenet() -> Network:
    """GoogLeNet (Szegedy et al., 2015): 57 CVLs in 11 precision groups, 1 FCL."""
    net = Network("googlenet", TensorShape(3, 224, 224))
    _conv_relu(net, "conv1", 64, kernel=7, stride=2, padding=3, precision_group=0)
    net.add(Pool2D(name="pool1", kernel=3, stride=2, padding=1))
    net.add(LRN(name="norm1"))
    _conv_relu(net, "conv2_reduce", 64, kernel=1, precision_group=1)
    _conv_relu(net, "conv2", 192, kernel=3, padding=1, precision_group=1)
    net.add(LRN(name="norm2"))
    net.add(Pool2D(name="pool2", kernel=3, stride=2, padding=1))
    src = "pool2"
    src = _inception(net, "inception_3a", src, 2, 64, 96, 128, 16, 32, 32)
    src = _inception(net, "inception_3b", src, 3, 128, 128, 192, 32, 96, 64)
    net.add(Pool2D(name="pool3", kernel=3, stride=2, padding=1), inputs=[src])
    src = "pool3"
    src = _inception(net, "inception_4a", src, 4, 192, 96, 208, 16, 48, 64)
    src = _inception(net, "inception_4b", src, 5, 160, 112, 224, 24, 64, 64)
    src = _inception(net, "inception_4c", src, 6, 128, 128, 256, 24, 64, 64)
    src = _inception(net, "inception_4d", src, 7, 112, 144, 288, 32, 64, 64)
    src = _inception(net, "inception_4e", src, 8, 256, 160, 320, 32, 128, 128)
    net.add(Pool2D(name="pool4", kernel=3, stride=2, padding=1), inputs=[src])
    src = "pool4"
    src = _inception(net, "inception_5a", src, 9, 256, 160, 320, 32, 128, 128)
    src = _inception(net, "inception_5b", src, 10, 384, 192, 384, 48, 128, 128)
    net.add(Pool2D(name="pool5", mode="avg", global_pool=True), inputs=[src])
    net.add(FullyConnected(name="loss3_classifier", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


def vggm() -> Network:
    """VGG-M / CNN-M (Chatfield et al., 2014): 5 CVLs, 3 FCLs."""
    net = Network("vggm", TensorShape(3, 224, 224))
    _conv_relu(net, "conv1", 96, kernel=7, stride=2)
    net.add(LRN(name="norm1"))
    net.add(Pool2D(name="pool1", kernel=3, stride=2))
    _conv_relu(net, "conv2", 256, kernel=5, stride=2, padding=1)
    net.add(LRN(name="norm2"))
    net.add(Pool2D(name="pool2", kernel=3, stride=2))
    _conv_relu(net, "conv3", 512, kernel=3, padding=1)
    _conv_relu(net, "conv4", 512, kernel=3, padding=1)
    _conv_relu(net, "conv5", 512, kernel=3, padding=1)
    net.add(Pool2D(name="pool5", kernel=3, stride=2, padding=1))
    net.add(FullyConnected(name="fc6", out_features=4096))
    net.add(ReLU(name="fc6_relu"))
    net.add(FullyConnected(name="fc7", out_features=4096))
    net.add(ReLU(name="fc7_relu"))
    net.add(FullyConnected(name="fc8", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


def vggs() -> Network:
    """VGG-S / CNN-S (Chatfield et al., 2014): 5 CVLs, 3 FCLs."""
    net = Network("vggs", TensorShape(3, 224, 224))
    _conv_relu(net, "conv1", 96, kernel=7, stride=2)
    net.add(LRN(name="norm1"))
    net.add(Pool2D(name="pool1", kernel=3, stride=3))
    _conv_relu(net, "conv2", 256, kernel=5)
    net.add(Pool2D(name="pool2", kernel=2, stride=2))
    _conv_relu(net, "conv3", 512, kernel=3, padding=1)
    _conv_relu(net, "conv4", 512, kernel=3, padding=1)
    _conv_relu(net, "conv5", 512, kernel=3, padding=1)
    net.add(Pool2D(name="pool5", kernel=3, stride=3))
    net.add(FullyConnected(name="fc6", out_features=4096))
    net.add(ReLU(name="fc6_relu"))
    net.add(FullyConnected(name="fc7", out_features=4096))
    net.add(ReLU(name="fc7_relu"))
    net.add(FullyConnected(name="fc8", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


def vgg19() -> Network:
    """VGG-19 (Simonyan & Zisserman, 2014): 16 CVLs, 3 FCLs."""
    net = Network("vgg19", TensorShape(3, 224, 224))
    stages = [
        ("1", 64, 2),
        ("2", 128, 2),
        ("3", 256, 4),
        ("4", 512, 4),
        ("5", 512, 4),
    ]
    for stage, channels, repeats in stages:
        for i in range(1, repeats + 1):
            _conv_relu(net, f"conv{stage}_{i}", channels, kernel=3, padding=1)
        net.add(Pool2D(name=f"pool{stage}", kernel=2, stride=2))
    net.add(FullyConnected(name="fc6", out_features=4096))
    net.add(ReLU(name="fc6_relu"))
    net.add(FullyConnected(name="fc7", out_features=4096))
    net.add(ReLU(name="fc7_relu"))
    net.add(FullyConnected(name="fc8", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


# ---------------------------------------------------------------------------
# Modern workloads: depthwise, residual and attention topologies.
# ---------------------------------------------------------------------------


def mobilenet_v1() -> Network:
    """MobileNetV1 (Howard et al., 2017): 27 CVLs (13 depthwise), 1 FCL.

    Every block is a depthwise 3x3 convolution (``groups == channels``)
    followed by a pointwise 1x1 convolution -- the workload that stresses
    grouped-convolution handling, because depthwise layers have 16x-224x
    fewer inner-product terms per window than the paper's CNN layers.
    """
    net = Network("mobilenet_v1", TensorShape(3, 224, 224))
    _conv_relu(net, "conv1", 32, kernel=3, stride=2, padding=1)
    # (stride of the depthwise conv, output channels of the pointwise conv)
    blocks = [
        (1, 64), (2, 128), (1, 128), (2, 256), (1, 256), (2, 512),
        (1, 512), (1, 512), (1, 512), (1, 512), (1, 512), (2, 1024),
        (1, 1024),
    ]
    channels = 32
    for index, (stride, out_channels) in enumerate(blocks, start=1):
        _conv_relu(net, f"conv{index}_dw", channels, kernel=3, stride=stride,
                   padding=1, groups=channels)
        _conv_relu(net, f"conv{index}_pw", out_channels, kernel=1)
        channels = out_channels
    net.add(Pool2D(name="pool", mode="avg", global_pool=True))
    net.add(FullyConnected(name="fc", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


def _basic_block(net: Network, name: str, source: str, out_channels: int,
                 stride: int, groups: int, downsample: bool) -> str:
    """Add one ResNet basic block; return the output ReLU's name."""
    r1 = _conv_relu(net, f"{name}_conv1", out_channels, kernel=3,
                    stride=stride, padding=1, groups=groups, inputs=[source])
    net.add(Conv2D(name=f"{name}_conv2", out_channels=out_channels, kernel=3,
                   padding=1, groups=groups), inputs=[r1])
    shortcut = source
    if downsample:
        net.add(Conv2D(name=f"{name}_downsample", out_channels=out_channels,
                       kernel=1, stride=stride), inputs=[source])
        shortcut = f"{name}_downsample"
    net.add(Add(name=f"{name}_add"), inputs=[f"{name}_conv2", shortcut])
    relu_name = f"{name}_relu"
    net.add(ReLU(name=relu_name))
    return relu_name


def resnet18(groups: int = 1) -> Network:
    """ResNet-18 (He et al., 2016): 20 CVLs, 1 FCL, residual ``Add`` branches.

    ``groups`` applies ResNeXt-style grouped convolution to every block's
    3x3 convolutions (the stem, downsample and classifier layers keep
    ``groups=1``); it must divide 64, the narrowest block width.
    """
    if groups < 1 or 64 % groups:
        raise ValueError(
            f"resnet18 groups must divide 64 (the narrowest block width), "
            f"got {groups}"
        )
    net = Network("resnet18", TensorShape(3, 224, 224))
    _conv_relu(net, "conv1", 64, kernel=7, stride=2, padding=3)
    net.add(Pool2D(name="pool1", kernel=3, stride=2, padding=1))
    source = "pool1"
    for stage, (out_channels, stride) in enumerate(
            [(64, 1), (128, 2), (256, 2), (512, 2)], start=1):
        source = _basic_block(net, f"layer{stage}_1", source, out_channels,
                              stride=stride, groups=groups,
                              downsample=stride != 1)
        source = _basic_block(net, f"layer{stage}_2", source, out_channels,
                              stride=1, groups=groups, downsample=False)
    net.add(Pool2D(name="pool5", mode="avg", global_pool=True), inputs=[source])
    net.add(FullyConnected(name="fc", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


def _encoder_block(net: Network, name: str, source: str, d_model: int,
                   seq_len: int, heads: int, ffn_dim: int) -> str:
    """Add one transformer encoder block; return the output Add's name."""
    net.add(MatMul(name=f"{name}_q", out_features=d_model), inputs=[source])
    net.add(MatMul(name=f"{name}_k", out_features=d_model), inputs=[source])
    net.add(MatMul(name=f"{name}_v", out_features=d_model), inputs=[source])
    # Q @ K^T: per head, every query position scores against all keys.
    net.add(MatMul(name=f"{name}_qk", out_features=heads * seq_len,
                   heads=heads, transpose_b=True),
            inputs=[f"{name}_q", f"{name}_k"])
    net.add(Softmax(name=f"{name}_attn", axis=0, groups=heads))
    # scores @ V: per head, mix the value vectors with the attention weights.
    net.add(MatMul(name=f"{name}_av", out_features=d_model, heads=heads),
            inputs=[f"{name}_attn", f"{name}_v"])
    net.add(MatMul(name=f"{name}_out", out_features=d_model))
    net.add(Add(name=f"{name}_add1"), inputs=[source, f"{name}_out"])
    net.add(MatMul(name=f"{name}_ffn1", out_features=ffn_dim))
    net.add(ReLU(name=f"{name}_ffn_relu"))
    net.add(MatMul(name=f"{name}_ffn2", out_features=d_model))
    out_name = f"{name}_add2"
    net.add(Add(name=out_name), inputs=[f"{name}_add1", f"{name}_ffn2"])
    return out_name


def tiny_transformer(heads: int = 4) -> Network:
    """A two-block transformer encoder built from ``MatMul`` attention work.

    The input is a pre-embedded token sequence laid out spatially:
    ``TensorShape(d_model=64, seq_len=16, 1)``.  Each block contributes
    eight MatMul layers (Q/K/V/output projections, the dynamic-operand
    ``Q @ K^T`` and ``scores @ V`` multiplies, and the two-layer MLP);
    a global pool plus classifier FCL close the network.  ``heads`` must
    divide ``d_model`` (64).
    """
    d_model, seq_len, ffn_dim = 64, 16, 128
    if heads < 1 or d_model % heads:
        raise ValueError(
            f"tiny_transformer heads must divide d_model={d_model}, "
            f"got {heads}"
        )
    net = Network("tiny_transformer", TensorShape(d_model, seq_len, 1))
    source = "__input__"
    for block in (1, 2):
        source = _encoder_block(net, f"block{block}", source, d_model,
                                seq_len, heads, ffn_dim)
    net.add(Pool2D(name="pool", mode="avg", global_pool=True), inputs=[source])
    net.add(FullyConnected(name="classifier", out_features=10))
    net.add(Softmax(name="prob"))
    return net


_BUILDERS: Dict[str, Callable[..., Network]] = {
    "alexnet": alexnet,
    "nin": nin,
    "googlenet": googlenet,
    "vggs": vggs,
    "vggm": vggm,
    "vgg19": vgg19,
    "mobilenet_v1": mobilenet_v1,
    "resnet18": resnet18,
    "tiny_transformer": tiny_transformer,
}

#: Which override keyword each builder accepts (design-space sweep axes).
_BUILDER_OVERRIDES: Dict[str, frozenset] = {
    "resnet18": frozenset({"groups"}),
    "tiny_transformer": frozenset({"heads"}),
}


def available_networks() -> List[str]:
    """Zoo network names: the paper's six (in its reporting order) plus the
    modern workloads."""
    return (["nin", "alexnet", "googlenet", "vggs", "vggm", "vgg19"]
            + modern_networks())


def modern_networks() -> List[str]:
    """The post-paper workloads (grouped/depthwise, residual, attention)."""
    return ["mobilenet_v1", "resnet18", "tiny_transformer"]


def supported_overrides(name: str) -> frozenset:
    """The structural override keywords ``build_network`` accepts for ``name``.

    Empty for most networks; ``{"groups"}`` for resnet18 and ``{"heads"}``
    for tiny_transformer.  Design-space sweeps use this to drop infeasible
    (network, override) combinations instead of aborting.
    """
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown network {name!r}; available: {available_networks()}"
        )
    return _BUILDER_OVERRIDES.get(key, frozenset())


def build_network(name: str, groups: Optional[int] = None,
                  heads: Optional[int] = None) -> Network:
    """Build a zoo network by name (case-insensitive).

    ``groups`` (resnet18) and ``heads`` (tiny_transformer) override the
    builder's structural defaults; passing an override the network does not
    support raises :class:`ValueError`.
    """
    supported = supported_overrides(name)
    overrides = {}
    if groups is not None:
        overrides["groups"] = groups
    if heads is not None:
        overrides["heads"] = heads
    unsupported = set(overrides) - supported
    if unsupported:
        raise ValueError(
            f"network {name!r} does not support the "
            f"{sorted(unsupported)} override(s)"
            + (f"; supported: {sorted(supported)}" if supported else "")
        )
    return _BUILDERS[name.lower()](**overrides)
