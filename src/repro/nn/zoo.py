"""Definitions of the six networks the paper evaluates.

The geometries come from each network's original publication (AlexNet,
Network-in-Network, GoogLeNet, VGG-S/M from Chatfield et al., VGG-19).  Only
the geometry matters for Loom's evaluation; weights are synthesised by
:class:`repro.nn.inference.ReferenceModel` when a runnable model is needed.

GoogLeNet is expressed with its full inception branch structure (57
convolutions); each inception module is assigned one *precision group* so the
network lines up with the paper's 11-entry GoogLeNet precision profile
(conv1, conv2, and the nine inception modules).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.nn.layers import (
    Concat,
    Conv2D,
    FullyConnected,
    LRN,
    Pool2D,
    ReLU,
    Softmax,
    TensorShape,
)
from repro.nn.network import Network

__all__ = [
    "alexnet",
    "nin",
    "googlenet",
    "vggs",
    "vggm",
    "vgg19",
    "available_networks",
    "build_network",
]


def _conv_relu(net: Network, name: str, out_channels: int, kernel: int,
               stride: int = 1, padding: int = 0, groups: int = 1,
               precision_group: int = None, inputs=None) -> str:
    """Add a convolution followed by a ReLU; return the ReLU's name."""
    net.add(
        Conv2D(
            name=name,
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            padding=padding,
            groups=groups,
            precision_group=precision_group,
        ),
        inputs=inputs,
    )
    relu_name = f"{name}_relu"
    net.add(ReLU(name=relu_name))
    return relu_name


def alexnet() -> Network:
    """AlexNet (Krizhevsky et al., 2012): 5 CVLs, 3 FCLs, 227x227 input."""
    net = Network("alexnet", TensorShape(3, 227, 227))
    _conv_relu(net, "conv1", 96, kernel=11, stride=4)
    net.add(LRN(name="norm1"))
    net.add(Pool2D(name="pool1", kernel=3, stride=2))
    _conv_relu(net, "conv2", 256, kernel=5, padding=2, groups=2)
    net.add(LRN(name="norm2"))
    net.add(Pool2D(name="pool2", kernel=3, stride=2))
    _conv_relu(net, "conv3", 384, kernel=3, padding=1)
    _conv_relu(net, "conv4", 384, kernel=3, padding=1, groups=2)
    _conv_relu(net, "conv5", 256, kernel=3, padding=1, groups=2)
    net.add(Pool2D(name="pool5", kernel=3, stride=2))
    net.add(FullyConnected(name="fc6", out_features=4096))
    net.add(ReLU(name="fc6_relu"))
    net.add(FullyConnected(name="fc7", out_features=4096))
    net.add(ReLU(name="fc7_relu"))
    net.add(FullyConnected(name="fc8", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


def nin() -> Network:
    """Network-in-Network (Lin et al., 2013): 12 CVLs, no FCLs."""
    net = Network("nin", TensorShape(3, 224, 224))
    _conv_relu(net, "conv1", 96, kernel=11, stride=4)
    _conv_relu(net, "cccp1", 96, kernel=1)
    _conv_relu(net, "cccp2", 96, kernel=1)
    net.add(Pool2D(name="pool1", kernel=3, stride=2))
    _conv_relu(net, "conv2", 256, kernel=5, padding=2)
    _conv_relu(net, "cccp3", 256, kernel=1)
    _conv_relu(net, "cccp4", 256, kernel=1)
    net.add(Pool2D(name="pool2", kernel=3, stride=2))
    _conv_relu(net, "conv3", 384, kernel=3, padding=1)
    _conv_relu(net, "cccp5", 384, kernel=1)
    _conv_relu(net, "cccp6", 384, kernel=1)
    net.add(Pool2D(name="pool3", kernel=3, stride=2))
    _conv_relu(net, "conv4", 1024, kernel=3, padding=1)
    _conv_relu(net, "cccp7", 1024, kernel=1)
    _conv_relu(net, "cccp8", 1000, kernel=1)
    net.add(Pool2D(name="pool4", mode="avg", global_pool=True))
    net.add(Softmax(name="prob"))
    return net


def _inception(net: Network, name: str, source: str, group: int,
               c1: int, c3r: int, c3: int, c5r: int, c5: int, pproj: int) -> str:
    """Add one GoogLeNet inception module; return the output Concat's name."""
    b1 = _conv_relu(net, f"{name}_1x1", c1, kernel=1, precision_group=group,
                    inputs=[source])
    r3 = _conv_relu(net, f"{name}_3x3_reduce", c3r, kernel=1,
                    precision_group=group, inputs=[source])
    b3 = _conv_relu(net, f"{name}_3x3", c3, kernel=3, padding=1,
                    precision_group=group, inputs=[r3])
    r5 = _conv_relu(net, f"{name}_5x5_reduce", c5r, kernel=1,
                    precision_group=group, inputs=[source])
    b5 = _conv_relu(net, f"{name}_5x5", c5, kernel=5, padding=2,
                    precision_group=group, inputs=[r5])
    net.add(Pool2D(name=f"{name}_pool", kernel=3, stride=1, padding=1),
            inputs=[source])
    bp = _conv_relu(net, f"{name}_pool_proj", pproj, kernel=1,
                    precision_group=group, inputs=[f"{name}_pool"])
    out_name = f"{name}_output"
    net.add(Concat(name=out_name, out_channels=c1 + c3 + c5 + pproj),
            inputs=[b1, b3, b5, bp])
    return out_name


def googlenet() -> Network:
    """GoogLeNet (Szegedy et al., 2015): 57 CVLs in 11 precision groups, 1 FCL."""
    net = Network("googlenet", TensorShape(3, 224, 224))
    _conv_relu(net, "conv1", 64, kernel=7, stride=2, padding=3, precision_group=0)
    net.add(Pool2D(name="pool1", kernel=3, stride=2, padding=1))
    net.add(LRN(name="norm1"))
    _conv_relu(net, "conv2_reduce", 64, kernel=1, precision_group=1)
    _conv_relu(net, "conv2", 192, kernel=3, padding=1, precision_group=1)
    net.add(LRN(name="norm2"))
    net.add(Pool2D(name="pool2", kernel=3, stride=2, padding=1))
    src = "pool2"
    src = _inception(net, "inception_3a", src, 2, 64, 96, 128, 16, 32, 32)
    src = _inception(net, "inception_3b", src, 3, 128, 128, 192, 32, 96, 64)
    net.add(Pool2D(name="pool3", kernel=3, stride=2, padding=1), inputs=[src])
    src = "pool3"
    src = _inception(net, "inception_4a", src, 4, 192, 96, 208, 16, 48, 64)
    src = _inception(net, "inception_4b", src, 5, 160, 112, 224, 24, 64, 64)
    src = _inception(net, "inception_4c", src, 6, 128, 128, 256, 24, 64, 64)
    src = _inception(net, "inception_4d", src, 7, 112, 144, 288, 32, 64, 64)
    src = _inception(net, "inception_4e", src, 8, 256, 160, 320, 32, 128, 128)
    net.add(Pool2D(name="pool4", kernel=3, stride=2, padding=1), inputs=[src])
    src = "pool4"
    src = _inception(net, "inception_5a", src, 9, 256, 160, 320, 32, 128, 128)
    src = _inception(net, "inception_5b", src, 10, 384, 192, 384, 48, 128, 128)
    net.add(Pool2D(name="pool5", mode="avg", global_pool=True), inputs=[src])
    net.add(FullyConnected(name="loss3_classifier", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


def vggm() -> Network:
    """VGG-M / CNN-M (Chatfield et al., 2014): 5 CVLs, 3 FCLs."""
    net = Network("vggm", TensorShape(3, 224, 224))
    _conv_relu(net, "conv1", 96, kernel=7, stride=2)
    net.add(LRN(name="norm1"))
    net.add(Pool2D(name="pool1", kernel=3, stride=2))
    _conv_relu(net, "conv2", 256, kernel=5, stride=2, padding=1)
    net.add(LRN(name="norm2"))
    net.add(Pool2D(name="pool2", kernel=3, stride=2))
    _conv_relu(net, "conv3", 512, kernel=3, padding=1)
    _conv_relu(net, "conv4", 512, kernel=3, padding=1)
    _conv_relu(net, "conv5", 512, kernel=3, padding=1)
    net.add(Pool2D(name="pool5", kernel=3, stride=2, padding=1))
    net.add(FullyConnected(name="fc6", out_features=4096))
    net.add(ReLU(name="fc6_relu"))
    net.add(FullyConnected(name="fc7", out_features=4096))
    net.add(ReLU(name="fc7_relu"))
    net.add(FullyConnected(name="fc8", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


def vggs() -> Network:
    """VGG-S / CNN-S (Chatfield et al., 2014): 5 CVLs, 3 FCLs."""
    net = Network("vggs", TensorShape(3, 224, 224))
    _conv_relu(net, "conv1", 96, kernel=7, stride=2)
    net.add(LRN(name="norm1"))
    net.add(Pool2D(name="pool1", kernel=3, stride=3))
    _conv_relu(net, "conv2", 256, kernel=5)
    net.add(Pool2D(name="pool2", kernel=2, stride=2))
    _conv_relu(net, "conv3", 512, kernel=3, padding=1)
    _conv_relu(net, "conv4", 512, kernel=3, padding=1)
    _conv_relu(net, "conv5", 512, kernel=3, padding=1)
    net.add(Pool2D(name="pool5", kernel=3, stride=3))
    net.add(FullyConnected(name="fc6", out_features=4096))
    net.add(ReLU(name="fc6_relu"))
    net.add(FullyConnected(name="fc7", out_features=4096))
    net.add(ReLU(name="fc7_relu"))
    net.add(FullyConnected(name="fc8", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


def vgg19() -> Network:
    """VGG-19 (Simonyan & Zisserman, 2014): 16 CVLs, 3 FCLs."""
    net = Network("vgg19", TensorShape(3, 224, 224))
    stages = [
        ("1", 64, 2),
        ("2", 128, 2),
        ("3", 256, 4),
        ("4", 512, 4),
        ("5", 512, 4),
    ]
    for stage, channels, repeats in stages:
        for i in range(1, repeats + 1):
            _conv_relu(net, f"conv{stage}_{i}", channels, kernel=3, padding=1)
        net.add(Pool2D(name=f"pool{stage}", kernel=2, stride=2))
    net.add(FullyConnected(name="fc6", out_features=4096))
    net.add(ReLU(name="fc6_relu"))
    net.add(FullyConnected(name="fc7", out_features=4096))
    net.add(ReLU(name="fc7_relu"))
    net.add(FullyConnected(name="fc8", out_features=1000))
    net.add(Softmax(name="prob"))
    return net


_BUILDERS: Dict[str, Callable[[], Network]] = {
    "alexnet": alexnet,
    "nin": nin,
    "googlenet": googlenet,
    "vggs": vggs,
    "vggm": vggm,
    "vgg19": vgg19,
}


def available_networks() -> List[str]:
    """Names of the networks in the zoo, in the paper's reporting order."""
    return ["nin", "alexnet", "googlenet", "vggs", "vggm", "vgg19"]


def build_network(name: str) -> Network:
    """Build a zoo network by name (case-insensitive)."""
    key = name.lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown network {name!r}; available: {available_networks()}"
        )
    return _BUILDERS[key]()
