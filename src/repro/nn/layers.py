"""Layer intermediate representation with shape inference and work accounting.

Every accelerator model in this repository consumes layers through the small
interface defined here: a layer knows its input and output shapes, how many
multiply-accumulate operations it performs, how many weights it stores and how
many activations it reads and writes.  Those quantities, together with the
per-layer precisions, completely determine Loom's and the baselines'
execution time, traffic and energy.

Shapes follow the ``(channels, height, width)`` convention for spatial tensors
and ``(features,)`` for flat tensors; the batch dimension is implicit (the
paper evaluates single-image inference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TensorShape",
    "Layer",
    "Conv2D",
    "FullyConnected",
    "MatMul",
    "Pool2D",
    "ReLU",
    "LRN",
    "Concat",
    "Add",
    "Softmax",
]


@dataclass(frozen=True)
class TensorShape:
    """Shape of an activation tensor (batch dimension implicit).

    ``height``/``width`` are ``None`` for flat (fully-connected) tensors.
    """

    channels: int
    height: Optional[int] = None
    width: Optional[int] = None

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1, got {self.channels}")
        if (self.height is None) != (self.width is None):
            raise ValueError("height and width must both be set or both be None")
        if self.height is not None and (self.height < 1 or self.width < 1):
            raise ValueError(
                f"spatial dims must be >= 1, got {self.height}x{self.width}"
            )

    @property
    def is_spatial(self) -> bool:
        return self.height is not None

    @property
    def size(self) -> int:
        """Total number of elements."""
        if self.is_spatial:
            return self.channels * self.height * self.width
        return self.channels

    def flatten(self) -> "TensorShape":
        """Shape of the tensor after flattening to a vector."""
        return TensorShape(channels=self.size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_spatial:
            return f"{self.channels}x{self.height}x{self.width}"
        return f"{self.channels}"


@dataclass
class Layer:
    """Base class for all layers.

    Attributes
    ----------
    name:
        Unique layer name within a network.
    precision_group:
        Index of the precision-profile entry this layer belongs to.  The paper
        reports GoogLeNet precisions per inception module (11 entries for 57
        convolutions); the group index maps each layer onto its entry.  When
        ``None`` the layer gets its own group in network order.
    """

    name: str
    precision_group: Optional[int] = None

    # -- shape interface --------------------------------------------------------

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        """Infer the output shape from the input shape."""
        raise NotImplementedError

    # -- work accounting ---------------------------------------------------------

    def macs(self, input_shape: TensorShape) -> int:
        """Multiply-accumulate operations performed for one inference."""
        return 0

    def weight_count(self) -> int:
        """Number of weight parameters stored for this layer."""
        return 0

    @property
    def is_conv(self) -> bool:
        return False

    @property
    def is_fc(self) -> bool:
        return False

    @property
    def is_matmul(self) -> bool:
        """True for attention-style matrix multiplies (a sub-kind of CVL work)."""
        return False

    @property
    def is_compute(self) -> bool:
        """True for layers that run on the inner-product datapath (CVL/FCL)."""
        return self.is_conv or self.is_fc

    @property
    def kind(self) -> str:
        """Reporting kind of a compute layer: ``"conv"``, ``"fc"`` or
        ``"matmul"``.

        MatMul layers execute on the CVL datapath (``is_conv`` is True for
        them) but are reported distinctly so workload breakdowns can separate
        attention-style work from spatial convolutions.  Non-compute layers
        (pooling, activations, merges) have no reporting kind and raise.
        """
        if self.is_matmul:
            return "matmul"
        if self.is_conv:
            return "conv"
        if self.is_fc:
            return "fc"
        raise ValueError(f"layer {self.name!r} is not a compute layer")


def _conv_out_dim(size: int, kernel: int, stride: int, padding: int,
                  layer_name: str = "") -> int:
    """Standard convolution/pooling output dimension formula.

    Raises a :class:`ValueError` naming the offending layer when the window
    does not fit the (padded) input, so an impossible geometry fails loudly at
    shape-resolution time instead of leaking a non-positive dimension into the
    simulators.
    """
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        prefix = f"layer {layer_name!r}: " if layer_name else ""
        raise ValueError(
            f"{prefix}kernel {kernel} / stride {stride} / padding {padding} "
            f"does not fit input dimension {size} "
            f"(output dimension would be {out}, must be >= 1)"
        )
    return out


@dataclass
class Conv2D(Layer):
    """2-D convolution layer (a CVL in the paper's terminology)."""

    out_channels: int = 1
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    groups: int = 1
    bias: bool = True

    def __post_init__(self) -> None:
        if self.out_channels < 1:
            raise ValueError(f"out_channels must be >= 1, got {self.out_channels}")
        if self.kernel < 1 or self.stride < 1:
            raise ValueError("kernel and stride must be >= 1")
        if self.padding < 0:
            raise ValueError("padding must be >= 0")
        if self.groups < 1:
            raise ValueError("groups must be >= 1")
        if self.out_channels % self.groups:
            raise ValueError(
                f"out_channels {self.out_channels} not divisible by groups "
                f"{self.groups}"
            )

    @property
    def is_conv(self) -> bool:
        return True

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if not input_shape.is_spatial:
            raise ValueError(f"Conv2D {self.name} needs a spatial input")
        if input_shape.channels % self.groups:
            raise ValueError(
                f"Conv2D {self.name}: input channels {input_shape.channels} not "
                f"divisible by groups {self.groups}"
            )
        out_h = _conv_out_dim(input_shape.height, self.kernel, self.stride,
                              self.padding, layer_name=self.name)
        out_w = _conv_out_dim(input_shape.width, self.kernel, self.stride,
                              self.padding, layer_name=self.name)
        return TensorShape(self.out_channels, out_h, out_w)

    def window_size(self, input_shape: TensorShape) -> int:
        """Inner-product length per output activation (terms per window)."""
        in_per_group = input_shape.channels // self.groups
        return in_per_group * self.kernel * self.kernel

    def num_windows(self, input_shape: TensorShape) -> int:
        """Number of spatial window positions."""
        out = self.output_shape(input_shape)
        return out.height * out.width

    def macs(self, input_shape: TensorShape) -> int:
        out = self.output_shape(input_shape)
        return self.window_size(input_shape) * out.size

    def weight_count_for(self, input_shape: TensorShape) -> int:
        return self.window_size(input_shape) * self.out_channels

    def weight_count(self) -> int:  # pragma: no cover - needs input shape
        raise ValueError(
            "Conv2D.weight_count requires the input shape; use weight_count_for()"
        )


@dataclass
class FullyConnected(Layer):
    """Fully-connected (inner product) layer (an FCL)."""

    out_features: int = 1
    bias: bool = True

    def __post_init__(self) -> None:
        if self.out_features < 1:
            raise ValueError(f"out_features must be >= 1, got {self.out_features}")

    @property
    def is_fc(self) -> bool:
        return True

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return TensorShape(channels=self.out_features)

    def in_features(self, input_shape: TensorShape) -> int:
        return input_shape.size

    def macs(self, input_shape: TensorShape) -> int:
        return input_shape.size * self.out_features

    def weight_count_for(self, input_shape: TensorShape) -> int:
        return input_shape.size * self.out_features

    def weight_count(self) -> int:  # pragma: no cover - needs input shape
        raise ValueError(
            "FullyConnected.weight_count requires the input shape; "
            "use weight_count_for()"
        )


@dataclass
class MatMul(Layer):
    """Token-parallel matrix multiply (attention-style work).

    The input is a sequence tensor laid out spatially: ``channels`` carries
    the per-token feature dimension and ``height x width`` the token
    positions (a ``(d_model, seq_len, 1)`` tensor for a transformer).  Every
    token position computes ``out_features`` inner products of length
    ``channels / heads``, exactly the window/filter structure of a grouped
    1x1 convolution -- which is how all four accelerator designs execute it
    (``is_conv`` is True; the reporting ``kind`` is ``"matmul"``).

    With a single network input the ``B`` operand is a learned weight matrix
    (Q/K/V/output projections, MLP layers).  With two inputs the ``B``
    operand is itself an activation tensor produced at runtime (``Q @ K^T``
    and ``scores @ V``); the cost models stream it through the weight path --
    its bits still have to be delivered to the SIPs every pass -- so
    ``weight_count_for`` counts it either way.

    Parameters
    ----------
    out_features:
        Output features per token, across all heads.
    heads:
        Independent head groups; both the input features and
        ``out_features`` must divide evenly.
    transpose_b:
        Only meaningful with a dynamic (two-input) ``B``: interpret each
        head of ``B`` as ``(in_per_group, out_per_group)`` -- the ``Q @ K^T``
        orientation -- instead of ``(out_per_group, in_per_group)``.
    """

    out_features: int = 1
    heads: int = 1
    transpose_b: bool = False
    bias: bool = False

    def __post_init__(self) -> None:
        if self.out_features < 1:
            raise ValueError(f"out_features must be >= 1, got {self.out_features}")
        if self.heads < 1:
            raise ValueError(f"heads must be >= 1, got {self.heads}")
        if self.out_features % self.heads:
            raise ValueError(
                f"out_features {self.out_features} not divisible by heads "
                f"{self.heads}"
            )

    @property
    def is_conv(self) -> bool:
        # MatMul work is CVL-shaped: shared-per-token "weights" over many
        # token positions; every conv-path cost model applies unchanged.
        return True

    @property
    def is_matmul(self) -> bool:
        return True

    @property
    def out_channels(self) -> int:
        """Alias so the conv-path cost models can consume MatMul layers."""
        return self.out_features

    @property
    def groups(self) -> int:
        """Alias: heads partition features exactly like conv groups."""
        return self.heads

    def _check_input(self, input_shape: TensorShape) -> None:
        if not input_shape.is_spatial:
            raise ValueError(
                f"MatMul {self.name} needs a spatial (features x positions) "
                f"input"
            )
        if input_shape.channels % self.heads:
            raise ValueError(
                f"MatMul {self.name}: input features {input_shape.channels} "
                f"not divisible by heads {self.heads}"
            )

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        self._check_input(input_shape)
        return TensorShape(self.out_features, input_shape.height,
                           input_shape.width)

    def validate_b_shape(self, a_shape: TensorShape, b_shape: TensorShape) -> None:
        """Check a dynamic ``B`` operand against the declared geometry.

        Per head, ``B`` must reshape to the weight matrix the multiply needs:
        ``(out_per_group, in_per_group)``, or its transpose when
        ``transpose_b`` is set.
        """
        if not b_shape.is_spatial:
            raise ValueError(f"MatMul {self.name}: B operand must be spatial")
        if b_shape.channels % self.heads:
            raise ValueError(
                f"MatMul {self.name}: B features {b_shape.channels} not "
                f"divisible by heads {self.heads}"
            )
        in_per_group = a_shape.channels // self.heads
        out_per_group = self.out_features // self.heads
        b_per_group = b_shape.channels // self.heads
        b_positions = b_shape.height * b_shape.width
        if self.transpose_b:
            expected = (in_per_group, out_per_group)
        else:
            expected = (out_per_group, in_per_group)
        if (b_per_group, b_positions) != expected:
            raise ValueError(
                f"MatMul {self.name}: B operand per head is "
                f"{(b_per_group, b_positions)} (features, positions) but the "
                f"declared geometry needs {expected}"
                + (" (transpose_b)" if self.transpose_b else "")
            )

    # -- conv-path cost interface (window/filter structure) ---------------------

    def window_size(self, input_shape: TensorShape) -> int:
        """Inner-product length per output feature (terms per token)."""
        self._check_input(input_shape)
        return input_shape.channels // self.heads

    def num_windows(self, input_shape: TensorShape) -> int:
        """Token positions: each computes its own set of output features."""
        self._check_input(input_shape)
        return input_shape.height * input_shape.width

    def macs(self, input_shape: TensorShape) -> int:
        out = self.output_shape(input_shape)
        return self.window_size(input_shape) * out.size

    def weight_count_for(self, input_shape: TensorShape) -> int:
        """Values streamed through the weight path (learned or dynamic B)."""
        return self.window_size(input_shape) * self.out_features

    def weight_count(self) -> int:  # pragma: no cover - needs input shape
        raise ValueError(
            "MatMul.weight_count requires the input shape; use weight_count_for()"
        )


@dataclass
class Pool2D(Layer):
    """Max or average pooling; executed by the SIP max units / pooling units."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0
    mode: str = "max"
    global_pool: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("max", "avg"):
            raise ValueError(f"mode must be 'max' or 'avg', got {self.mode!r}")
        if not self.global_pool and (self.kernel < 1 or self.stride < 1):
            raise ValueError("kernel and stride must be >= 1")

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if not input_shape.is_spatial:
            raise ValueError(f"Pool2D {self.name} needs a spatial input")
        if self.global_pool:
            return TensorShape(input_shape.channels, 1, 1)
        out_h = _conv_out_dim(input_shape.height, self.kernel, self.stride,
                              self.padding, layer_name=self.name)
        out_w = _conv_out_dim(input_shape.width, self.kernel, self.stride,
                              self.padding, layer_name=self.name)
        return TensorShape(input_shape.channels, out_h, out_w)


@dataclass
class ReLU(Layer):
    """Rectified linear activation; executed by the activation functional unit."""

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape


@dataclass
class LRN(Layer):
    """Local response normalisation (AlexNet-era networks)."""

    local_size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75
    k: float = 1.0

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape


@dataclass
class Concat(Layer):
    """Channel-wise concatenation marker (used to model inception outputs).

    The network container in this repository is a linear chain; inception
    modules are expressed as a sequence of convolutions whose channel counts
    already account for the branch structure, and ``Concat`` simply reshapes
    the running channel count to the module's concatenated output.
    """

    out_channels: int = 1

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if not input_shape.is_spatial:
            raise ValueError(f"Concat {self.name} needs a spatial input")
        return TensorShape(self.out_channels, input_shape.height, input_shape.width)


@dataclass
class Add(Layer):
    """Elementwise addition (residual connection).

    The only layer besides :class:`Concat` and a dynamic :class:`MatMul`
    that accepts multiple inputs; all sources must have identical shapes.
    Executed by the activation functional units -- negligible datapath work,
    so it is not a compute layer -- but it is what makes residual topologies
    (ResNet blocks, transformer skip connections) representable.
    """

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape


@dataclass
class Softmax(Layer):
    """Softmax; negligible work, kept for functional completeness.

    By default the whole tensor is normalised as one distribution (the
    classifier use).  ``axis=0`` normalises over the channel dimension
    independently at every spatial position, and ``groups > 1`` splits the
    channels into equal blocks first -- the attention-score use, where each
    head's scores for one query position form their own distribution.
    """

    axis: Optional[int] = None
    groups: int = 1

    def __post_init__(self) -> None:
        if self.axis not in (None, 0):
            raise ValueError(f"axis must be None or 0, got {self.axis}")
        if self.groups < 1:
            raise ValueError(f"groups must be >= 1, got {self.groups}")
        if self.groups > 1 and self.axis != 0:
            raise ValueError("groups > 1 requires axis=0")

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if self.axis == 0 and input_shape.channels % self.groups:
            raise ValueError(
                f"Softmax {self.name}: channels {input_shape.channels} not "
                f"divisible by groups {self.groups}"
            )
        return input_shape
