"""Runtime per-group precision reduction used by Loom (and DStripes).

The mechanism itself lives in :mod:`repro.quant.dynamic` (it is a property of
the data and of the group size, not of any one accelerator); this module
re-exports it under the core package for API clarity and provides a helper
that measures per-layer effective precisions across a whole network using the
reference model's captured activations.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.nn.inference import ReferenceModel, choose_format
from repro.nn.network import Network
from repro.quant.dynamic import DynamicPrecisionModel
from repro.quant.fixedpoint import quantize

__all__ = ["DynamicPrecisionModel", "measure_network_dynamic_precisions"]


def measure_network_dynamic_precisions(
    network: Network,
    x: np.ndarray,
    model: Optional[DynamicPrecisionModel] = None,
    bits_per_cycle: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, float]:
    """Measure effective dynamic activation precisions for every compute layer.

    Runs the reference model on input ``x`` with the network's attached
    precision profile, captures the quantised activations entering each
    compute layer, and returns the average per-group serial cost (in bits) of
    each layer under dynamic precision reduction.

    This is the "measured" counterpart of the analytical constant the
    experiment harness uses; the precision-tradeoff example compares the two.
    """
    model = model or DynamicPrecisionModel()
    layers = network.compute_layers()
    precisions: Mapping[str, Tuple[int, int]] = {
        lw.name: (lw.precision.activation_bits, lw.precision.weight_bits)
        for lw in layers
    }
    reference = ReferenceModel(network, rng=rng)
    captured: Dict[str, np.ndarray] = {}
    reference.forward(x, precisions=precisions, capture=captured)
    results: Dict[str, float] = {}
    for lw in layers:
        values = captured.get(lw.name)
        if values is None:
            continue
        profile_bits = lw.precision.activation_bits
        signed = bool(np.any(values < 0))
        fmt = choose_format(values, profile_bits, signed=signed)
        codes = np.abs(quantize(values, fmt))
        results[lw.name] = model.measured_activation_bits(
            codes, profile_bits, bits_per_cycle=bits_per_cycle
        )
    return results
