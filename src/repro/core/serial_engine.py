"""Functional bit-serial execution of whole layers.

These routines run (small) convolutional and fully-connected layers through
Loom's bit-serial arithmetic -- the same decomposition the SIP array performs
-- and return both the outputs and the number of serial steps consumed.  They
are the functional ground truth that ties the performance model to actual
arithmetic: tests check that the outputs equal ordinary integer convolution /
matrix-vector products, and that the step counts equal what the scheduler
predicts for a single-SIP-per-output mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Conv2D, TensorShape
from repro.quant.bitops import bit_serial_dot

__all__ = ["SerialLayerOutput", "bit_serial_fc", "bit_serial_conv2d"]


@dataclass(frozen=True)
class SerialLayerOutput:
    """Result of a functional bit-serial layer execution.

    Attributes
    ----------
    outputs:
        Integer output activation codes (pre-activation-function).
    serial_steps:
        Total number of 1-bit x 1-bit step *phases* executed per output
        (``act_bits x weight_bits`` for every 16-term chunk), summed over the
        layer.  This is a functional count used to validate the analytical
        cycle model, not a cycle count of the parallel array.
    """

    outputs: np.ndarray
    serial_steps: int


def bit_serial_fc(
    activations: np.ndarray,
    weights: np.ndarray,
    act_bits: int,
    weight_bits: int,
    act_signed: bool = False,
    lanes: int = 16,
) -> SerialLayerOutput:
    """Fully-connected layer computed bit-serially.

    Parameters
    ----------
    activations:
        Integer input codes, shape ``(in_features,)``.
    weights:
        Integer weight codes, shape ``(out_features, in_features)``.
    act_bits / weight_bits:
        Precisions used for the serial decomposition.
    lanes:
        Terms processed per SIP step (16 in the hardware); inputs are padded
        to a multiple of this.
    """
    activations = np.asarray(activations, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if activations.ndim != 1 or weights.ndim != 2:
        raise ValueError("activations must be 1-D and weights 2-D")
    out_features, in_features = weights.shape
    if activations.shape[0] != in_features:
        raise ValueError(
            f"weights expect {in_features} inputs, got {activations.shape[0]}"
        )
    pad = (-in_features) % lanes
    if pad:
        activations = np.concatenate([activations, np.zeros(pad, dtype=np.int64)])
        weights = np.concatenate(
            [weights, np.zeros((out_features, pad), dtype=np.int64)], axis=1
        )
    chunks = activations.shape[0] // lanes
    outputs = np.zeros(out_features, dtype=np.int64)
    steps = 0
    for o in range(out_features):
        total = 0
        for c in range(chunks):
            a_chunk = activations[c * lanes:(c + 1) * lanes]
            w_chunk = weights[o, c * lanes:(c + 1) * lanes]
            value, cycles = bit_serial_dot(
                a_chunk, w_chunk, act_bits, weight_bits,
                act_signed=act_signed, weight_signed=True,
            )
            total += value
            steps += cycles
        outputs[o] = total
    return SerialLayerOutput(outputs=outputs, serial_steps=steps)


def bit_serial_conv2d(
    activations: np.ndarray,
    weights: np.ndarray,
    layer: Conv2D,
    act_bits: int,
    weight_bits: int,
    act_signed: bool = False,
    lanes: int = 16,
) -> SerialLayerOutput:
    """Convolutional layer computed bit-serially.

    Parameters
    ----------
    activations:
        Integer input codes, shape ``(channels, height, width)``.
    weights:
        Integer weight codes, shape
        ``(out_channels, in_channels_per_group, k, k)``.
    layer:
        The convolution geometry (kernel, stride, padding, groups).
    """
    activations = np.asarray(activations, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if activations.ndim != 3 or weights.ndim != 4:
        raise ValueError("activations must be 3-D and weights 4-D")
    channels, height, width = activations.shape
    in_shape = TensorShape(channels, height, width)
    out_shape = layer.output_shape(in_shape)
    groups = layer.groups
    in_per_group = channels // groups
    out_per_group = layer.out_channels // groups

    padded = activations
    if layer.padding:
        padded = np.pad(
            activations,
            ((0, 0), (layer.padding, layer.padding), (layer.padding, layer.padding)),
        )
    outputs = np.zeros((out_shape.channels, out_shape.height, out_shape.width),
                       dtype=np.int64)
    steps = 0
    for oc in range(layer.out_channels):
        g = oc // out_per_group
        w_flat = weights[oc].reshape(-1)
        for oy in range(out_shape.height):
            for ox in range(out_shape.width):
                window = padded[
                    g * in_per_group:(g + 1) * in_per_group,
                    oy * layer.stride:oy * layer.stride + layer.kernel,
                    ox * layer.stride:ox * layer.stride + layer.kernel,
                ].reshape(-1)
                pad = (-window.shape[0]) % lanes
                if pad:
                    window = np.concatenate(
                        [window, np.zeros(pad, dtype=np.int64)]
                    )
                    w_padded = np.concatenate(
                        [w_flat, np.zeros(pad, dtype=np.int64)]
                    )
                else:
                    w_padded = w_flat
                total = 0
                for c in range(window.shape[0] // lanes):
                    a_chunk = window[c * lanes:(c + 1) * lanes]
                    w_chunk = w_padded[c * lanes:(c + 1) * lanes]
                    value, cycles = bit_serial_dot(
                        a_chunk, w_chunk, act_bits, weight_bits,
                        act_signed=act_signed, weight_signed=True,
                    )
                    total += value
                    steps += cycles
                outputs[oc, oy, ox] = total
    return SerialLayerOutput(outputs=outputs, serial_steps=steps)
