"""Functional model of Loom's Serial Inner-Product unit (Figure 3).

A SIP holds 16 one-bit weight registers (WRs).  Every cycle it receives 16
activation bits, ANDs them with the WR contents, reduces the 16 partial
products through a one-bit adder tree, and shift-accumulates the result:

* **AC1** accumulates over the activation bits of the current weight bit
  plane (one shift per activation bit).
* **AC2 / OR** accumulates the finished AC1 value, shifted by the weight bit
  position, once per weight bit plane.

Two's-complement operands are handled with the negation block: the partial
sum produced while the *sign* plane (of either operand) is in flight is
subtracted instead of added.  The unit also supports cascading (an upstream
SIP's output can be summed into this SIP's OR, used to slice fully-connected
layers with few outputs across a row) and a ``max`` compare for max-pooling
layers.

This class is intentionally a *functional* model: it is stepped cycle by
cycle by the tests and by :mod:`repro.core.serial_engine`, and its results
are checked against ordinary integer arithmetic.  Performance modelling lives
in :mod:`repro.core.scheduler` / :mod:`repro.core.tile`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["SIP"]


class SIP:
    """One Serial Inner-Product unit.

    Parameters
    ----------
    lanes:
        Number of weight/activation lanes (16 in the paper).
    """

    def __init__(self, lanes: int = 16) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = lanes
        self._weight_regs = np.zeros(lanes, dtype=np.int64)
        self._weight_bit_index = 0
        self._weight_is_sign = False
        self._ac1 = 0
        self._act_bit_index = 0
        self._output_register = 0
        self._max_register: Optional[int] = None
        self.cycles = 0

    # -- weight handling ----------------------------------------------------------

    def load_weights(self, weight_bits: Sequence[int], bit_index: int,
                     is_sign_plane: bool = False) -> None:
        """Load one bit plane of the 16 weights into the WRs.

        ``bit_index`` is the plane's significance (0 = LSB); ``is_sign_plane``
        marks the two's-complement sign plane whose contribution must be
        subtracted (the SIP's negation block).
        """
        bits = np.asarray(weight_bits, dtype=np.int64)
        if bits.shape != (self.lanes,):
            raise ValueError(
                f"expected {self.lanes} weight bits, got shape {bits.shape}"
            )
        if not np.all((bits == 0) | (bits == 1)):
            raise ValueError("weight bits must be 0 or 1")
        if bit_index < 0:
            raise ValueError(f"bit_index must be >= 0, got {bit_index}")
        self._weight_regs = bits.copy()
        self._weight_bit_index = bit_index
        self._weight_is_sign = is_sign_plane
        self._ac1 = 0
        self._act_bit_index = 0

    # -- per-cycle datapath ---------------------------------------------------------

    def step(self, activation_bits: Sequence[int], bit_index: int,
             is_sign_plane: bool = False) -> int:
        """Process one activation bit plane against the currently loaded weights.

        Returns the adder-tree output of this cycle (before shifting), mainly
        for observability in tests.
        """
        bits = np.asarray(activation_bits, dtype=np.int64)
        if bits.shape != (self.lanes,):
            raise ValueError(
                f"expected {self.lanes} activation bits, got shape {bits.shape}"
            )
        if not np.all((bits == 0) | (bits == 1)):
            raise ValueError("activation bits must be 0 or 1")
        if bit_index < 0:
            raise ValueError(f"bit_index must be >= 0, got {bit_index}")
        partial = int(np.sum(bits & self._weight_regs))
        contribution = partial << bit_index
        if is_sign_plane:
            contribution = -contribution
        self._ac1 += contribution
        self._act_bit_index = bit_index
        self.cycles += 1
        return partial

    def commit_weight_plane(self) -> None:
        """Fold AC1 into the output register (AC2), shifted by the weight bit.

        Called once all activation bit planes for the current weight plane
        have been stepped (every ``Pa`` cycles in the paper's description).
        """
        value = self._ac1 << self._weight_bit_index
        if self._weight_is_sign:
            value = -value
        self._output_register += value
        self._ac1 = 0

    # -- auxiliary functions ----------------------------------------------------------

    def cascade_in(self, partial_output: int) -> None:
        """Add an upstream SIP's partial output (SIP cascading)."""
        self._output_register += int(partial_output)

    def max_update(self, value: Optional[int] = None) -> int:
        """Max-pooling support: track the maximum of offered values.

        With no argument the current output register is offered; returns the
        running maximum.
        """
        candidate = self._output_register if value is None else int(value)
        if self._max_register is None or candidate > self._max_register:
            self._max_register = candidate
        return self._max_register

    # -- results ----------------------------------------------------------------------

    @property
    def output(self) -> int:
        """The accumulated inner product (the OR register)."""
        return self._output_register

    @property
    def max_output(self) -> Optional[int]:
        return self._max_register

    def reset(self) -> None:
        """Clear all state (new output activation)."""
        self._weight_regs[:] = 0
        self._weight_bit_index = 0
        self._weight_is_sign = False
        self._ac1 = 0
        self._act_bit_index = 0
        self._output_register = 0
        self._max_register = None

    # -- convenience: full inner product ------------------------------------------------

    def run_inner_product(self, activations: Sequence[int], weights: Sequence[int],
                          act_bits: int, weight_bits: int,
                          act_signed: bool = False,
                          weight_signed: bool = True) -> int:
        """Run a complete bit-serial inner product through this SIP.

        Streams every weight bit plane, and for each one every activation bit
        plane, exactly as the hardware schedule does, and returns the final OR
        value.  Mainly used by tests to check the SIP against ``np.dot``.
        """
        from repro.quant.bitops import bit_decompose

        activations = np.asarray(activations, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if activations.shape != (self.lanes,) or weights.shape != (self.lanes,):
            raise ValueError(
                f"activations and weights must have shape ({self.lanes},)"
            )
        a_planes = bit_decompose(activations, act_bits, signed=act_signed)
        w_planes = bit_decompose(weights, weight_bits, signed=weight_signed)
        self.reset()
        for wi in range(weight_bits):
            self.load_weights(
                w_planes[wi], bit_index=wi,
                is_sign_plane=weight_signed and wi == weight_bits - 1,
            )
            for ai in range(act_bits):
                self.step(
                    a_planes[ai], bit_index=ai,
                    is_sign_plane=act_signed and ai == act_bits - 1,
                )
            self.commit_weight_plane()
        return self.output
