"""Weight-sparsity analysis (the paper's "future work" extension).

The conclusion of the paper notes that "future work may consider extending LM
to further exploit weight sparsity".  This module provides the analysis side
of that extension: given weight tensors (real or synthetic), it measures

* the fraction of exactly-zero weights per layer and per 16-weight group,
* how many 16-weight groups are entirely zero (those groups' weight bit
  planes never need to be loaded, so a sparsity-aware Loom could skip their
  ``Pa x Pw`` serial steps outright), and
* an upper bound on the additional speedup a group-skipping Loom would get on
  top of the precision-based gains (analogous to how Table 4 estimates the
  per-group precision gains).

The estimate is intentionally an upper bound -- it assumes perfect skipping
with no load-imbalance across the SIP grid -- and is reported as such by the
sparsity example/benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.quant.groups import WEIGHT_GROUP_SIZE

__all__ = ["LayerSparsity", "analyze_weight_sparsity", "sparse_speedup_bound"]


@dataclass(frozen=True)
class LayerSparsity:
    """Sparsity statistics of one layer's weights."""

    layer_name: str
    total_weights: int
    zero_weights: int
    total_groups: int
    zero_groups: int
    group_size: int

    @property
    def weight_sparsity(self) -> float:
        """Fraction of individual weights that are exactly zero."""
        if self.total_weights == 0:
            return 0.0
        return self.zero_weights / self.total_weights

    @property
    def group_sparsity(self) -> float:
        """Fraction of weight groups that are entirely zero (skippable)."""
        if self.total_groups == 0:
            return 0.0
        return self.zero_groups / self.total_groups

    @property
    def skip_speedup_bound(self) -> float:
        """Upper bound on the speedup from skipping all-zero groups."""
        remaining = 1.0 - self.group_sparsity
        if remaining <= 0.0:
            return float("inf")
        return 1.0 / remaining


def analyze_weight_sparsity(
    weight_codes: np.ndarray,
    layer_name: str = "layer",
    group_size: int = WEIGHT_GROUP_SIZE,
) -> LayerSparsity:
    """Measure weight and group sparsity of one layer's integer weight codes.

    Groups are contiguous runs of ``group_size`` weights in processing order
    (one SIP row lane's worth), padded with zeros -- padding groups created
    purely by the padding are not counted as skippable.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    codes = np.asarray(weight_codes).ravel()
    total = int(codes.size)
    zero_weights = int(np.count_nonzero(codes == 0))
    if total == 0:
        return LayerSparsity(layer_name, 0, 0, 0, 0, group_size)
    pad = (-total) % group_size
    padded = np.concatenate([codes, np.ones(pad, dtype=codes.dtype)]) if pad \
        else codes
    groups = padded.reshape(-1, group_size)
    zero_groups = int(np.sum(~groups.any(axis=1)))
    return LayerSparsity(
        layer_name=layer_name,
        total_weights=total,
        zero_weights=zero_weights,
        total_groups=groups.shape[0],
        zero_groups=zero_groups,
        group_size=group_size,
    )


def sparse_speedup_bound(per_layer: Dict[str, LayerSparsity],
                         layer_cycles: Dict[str, float]) -> float:
    """Network-level upper bound on the group-skipping speedup.

    ``layer_cycles`` gives each layer's (precision-exploiting) execution time;
    the bound assumes each layer's time shrinks by its group-sparsity factor.
    """
    if not per_layer:
        raise ValueError("per_layer must not be empty")
    missing = set(per_layer) - set(layer_cycles)
    if missing:
        raise ValueError(f"layer_cycles missing entries for {sorted(missing)}")
    total = sum(layer_cycles[name] for name in per_layer)
    reduced = sum(
        layer_cycles[name] * (1.0 - stats.group_sparsity)
        for name, stats in per_layer.items()
    )
    if reduced <= 0.0:
        return float("inf")
    return total / reduced
