"""The Loom accelerator model (LM1b / LM2b / LM4b).

Loom processes both weights and activations bit-serially on a grid of Serial
Inner-Product units.  For convolutional layers its execution time scales with
``Pa x Pw`` (the per-layer -- and, at runtime, per-group -- activation and
weight precisions); for fully-connected layers with ``Pw`` alone.  Because it
also *stores* both operands bit-interleaved, its memory footprint and traffic
scale with the same precisions.

This class implements the common :class:`repro.accelerators.base.Accelerator`
interface on top of the schedules from :mod:`repro.core.scheduler`.  Knobs:

``bits_per_cycle``
    1, 2 or 4 for the LM1b / LM2b / LM4b variants of Section 3.2.
``dynamic_precision``
    The runtime activation-precision reduction model (enabled by default, as
    in the paper's main results).
``use_effective_weight_precision``
    Use the per-group effective weight precisions attached to the layer
    (Table 3) instead of the profile-derived per-layer precision -- the
    Section 4.6 / Table 4 mode.
``window_fanout``
    The alternative "fewer filters over more windows" tiling mentioned as
    future work (1 = the paper's organisation).
``use_cascading``
    SIP cascading for fully-connected layers with fewer outputs than SIPs.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.accelerators.base import Accelerator, AcceleratorConfig
from repro.core.scheduler import (
    LoomGeometry,
    schedule_conv_layer,
    schedule_fc_layer,
)
from repro.nn.network import LayerWithPrecision
from repro.quant.dynamic import DynamicPrecisionModel

__all__ = ["Loom"]


class Loom(Accelerator):
    """Bit-serial, precision-exploiting CNN accelerator (the paper's design)."""

    name = "Loom"

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        bits_per_cycle: int = 1,
        dynamic_precision: Optional[DynamicPrecisionModel] = None,
        use_effective_weight_precision: bool = False,
        window_fanout: int = 1,
        use_cascading: bool = True,
        replicate_filters: bool = False,
    ) -> None:
        if bits_per_cycle not in (1, 2, 4):
            raise ValueError(
                f"bits_per_cycle must be 1, 2 or 4, got {bits_per_cycle}"
            )
        self.bits_per_cycle = bits_per_cycle
        self.dynamic_precision = dynamic_precision or DynamicPrecisionModel()
        self.use_effective_weight_precision = use_effective_weight_precision
        self.window_fanout = window_fanout
        self.use_cascading = use_cascading
        self.replicate_filters = replicate_filters
        super().__init__(config)
        self.geometry = LoomGeometry(
            equivalent_macs=self.config.equivalent_macs,
            bits_per_cycle=bits_per_cycle,
            window_fanout=window_fanout,
        )
        self.name = f"Loom-{bits_per_cycle}b"

    # -- storage --------------------------------------------------------------------

    @property
    def uses_bit_interleaved_storage(self) -> bool:
        return True

    @property
    def stores_weights_serially(self) -> bool:
        return True

    def storage_precisions(self, layer: LayerWithPrecision) -> Tuple[int, int]:
        # Storage (and thus traffic) uses the profile-derived precisions; the
        # dynamic reduction applies to compute time only (the bits still have
        # to be fetched before the group's precision is known).
        return (layer.precision.weight_bits, layer.precision.activation_bits)

    # -- precision selection -----------------------------------------------------------

    def _conv_weight_bits(self, layer: LayerWithPrecision) -> float:
        precision = layer.precision
        if (self.use_effective_weight_precision
                and precision.effective_weight_bits is not None):
            return self.dynamic_precision.effective_weight_bits(
                precision.effective_weight_bits
            )
        return float(precision.weight_bits)

    def _fc_weight_bits(self, layer: LayerWithPrecision) -> float:
        precision = layer.precision
        if (self.use_effective_weight_precision
                and precision.effective_weight_bits is not None):
            return self.dynamic_precision.effective_weight_bits(
                precision.effective_weight_bits
            )
        return float(precision.weight_bits)

    def _conv_activation_bits(self, layer: LayerWithPrecision) -> float:
        return self.dynamic_precision.effective_activation_bits(
            layer.precision.activation_bits, bits_per_cycle=self.bits_per_cycle
        )

    # -- cycles --------------------------------------------------------------------------

    def conv_schedule(self, layer: LayerWithPrecision):
        """The schedule Loom uses for a convolutional layer."""
        return schedule_conv_layer(
            layer,
            self.geometry,
            activation_serial_bits=self._conv_activation_bits(layer),
            weight_serial_bits=self._conv_weight_bits(layer),
            replicate_filters=self.replicate_filters,
        )

    def fc_schedule(self, layer: LayerWithPrecision):
        """The schedule Loom uses for a fully-connected layer."""
        return schedule_fc_layer(
            layer,
            self.geometry,
            weight_serial_bits=self._fc_weight_bits(layer),
            use_cascading=self.use_cascading,
        )

    def compute_cycles(self, layer: LayerWithPrecision) -> float:
        if layer.is_conv:
            return float(self.conv_schedule(layer).total_cycles)
        return float(self.fc_schedule(layer).total_cycles)

    # -- energy / area -----------------------------------------------------------------------

    def datapath_pj_per_cycle(self) -> float:
        return self._power.loom_pj_per_cycle(
            self.config.equivalent_macs,
            bits_per_cycle=self.bits_per_cycle,
            dynamic_precision=self.dynamic_precision.enabled,
        )

    def core_area_mm2(self) -> float:
        return self._area.loom_core_mm2(
            self.config.equivalent_macs,
            bits_per_cycle=self.bits_per_cycle,
            dynamic_precision=self.dynamic_precision.enabled,
        )
