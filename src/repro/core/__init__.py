"""Loom: the paper's bit-serial, precision-exploiting accelerator.

* :mod:`repro.core.sip` -- a functional model of the Serial Inner-Product
  unit of Figure 3 (weight registers, AND gates, adder tree, the AC1/AC2
  shift-accumulators, two's-complement negation, cascading and max support).
* :mod:`repro.core.serial_engine` -- runs whole (small) layers through the
  bit-serial arithmetic and checks them against plain integer arithmetic;
  the functional ground truth for the datapath.
* :mod:`repro.core.scheduler` -- the tilings Loom uses for convolutional and
  fully-connected layers (window/term/filter chunking, column staggering,
  SIP cascading) expressed as schedules with exact cycle counts.
* :mod:`repro.core.tile` -- an event-driven cycle-level simulator of the SIP
  grid that executes those schedules; used to cross-check the analytical
  cycle counts.
* :mod:`repro.core.dynamic_precision` -- runtime per-group precision
  reduction (re-exported from :mod:`repro.quant.dynamic`).
* :mod:`repro.core.loom` -- the :class:`Loom` accelerator model (LM1b / LM2b
  / LM4b) implementing the :class:`repro.accelerators.base.Accelerator`
  interface used by all experiments.
"""

from repro.core.sip import SIP
from repro.core.serial_engine import (
    bit_serial_fc,
    bit_serial_conv2d,
    SerialLayerOutput,
)
from repro.core.scheduler import (
    LoomGeometry,
    ConvSchedule,
    FCSchedule,
    schedule_conv_layer,
    schedule_fc_layer,
    choose_cascade_slices,
)
from repro.core.tile import LoomTileSimulator
from repro.core.dynamic_precision import DynamicPrecisionModel
from repro.core.loom import Loom
from repro.core.sparsity import (
    LayerSparsity,
    analyze_weight_sparsity,
    sparse_speedup_bound,
)

__all__ = [
    "SIP",
    "bit_serial_fc",
    "bit_serial_conv2d",
    "SerialLayerOutput",
    "LoomGeometry",
    "ConvSchedule",
    "FCSchedule",
    "schedule_conv_layer",
    "schedule_fc_layer",
    "choose_cascade_slices",
    "LoomTileSimulator",
    "DynamicPrecisionModel",
    "Loom",
    "LayerSparsity",
    "analyze_weight_sparsity",
    "sparse_speedup_bound",
]
