"""Loom's layer schedules: how CVLs and FCLs map onto the SIP grid.

The performance of Loom is entirely determined by how a layer's work is tiled
onto the SIP grid and how many serial steps each tile takes.  This module
computes those schedules:

* :class:`LoomGeometry` describes a Loom configuration: how many filter rows
  and window columns the grid has and how many activation bits each SIP
  consumes per cycle (1, 2 or 4 for LM1b / LM2b / LM4b).
* :func:`schedule_conv_layer` tiles a convolutional layer: windows are
  spread over the window columns, filters over the filter rows, and the
  16-term inner-product chunks are streamed bit-serially over
  ``ceil(Pa / b) x Pw`` steps per chunk.
* :func:`schedule_fc_layer` tiles a fully-connected layer: one output per
  SIP, column-staggered weight loading, and SIP cascading when the layer has
  fewer outputs than the grid has SIPs.

Both the analytical :class:`repro.core.loom.Loom` model and the event-driven
:class:`repro.core.tile.LoomTileSimulator` consume these schedules, so tests
can check that the two agree cycle for cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.accelerators.base import LANES_PER_UNIT, ceil_div
from repro.nn.layers import Conv2D, FullyConnected
from repro.nn.network import LayerWithPrecision

__all__ = [
    "LoomGeometry",
    "ConvSchedule",
    "FCSchedule",
    "schedule_conv_layer",
    "schedule_fc_layer",
    "choose_cascade_slices",
]


@dataclass(frozen=True)
class LoomGeometry:
    """Shape of a Loom configuration's SIP grid.

    Parameters
    ----------
    equivalent_macs:
        The matched bit-parallel peak (128 for the paper's main config).
    bits_per_cycle:
        Activation bits each SIP processes per cycle (1, 2 or 4).
    window_fanout:
        The "alternative tiling" knob: by default (1) the grid has
        ``equivalent_macs`` filter rows and ``16 / bits_per_cycle`` window
        columns, the organisation the paper evaluates.  A fan-out of ``f``
        trades filter rows for window columns (``equivalent_macs / f`` rows,
        ``f x 16 / bits_per_cycle`` columns), the "32 filters over 64 windows"
        variant mentioned as future work.
    """

    equivalent_macs: int = 128
    bits_per_cycle: int = 1
    window_fanout: int = 1

    def __post_init__(self) -> None:
        if self.equivalent_macs < LANES_PER_UNIT or \
                self.equivalent_macs % LANES_PER_UNIT:
            raise ValueError(
                f"equivalent_macs must be a positive multiple of {LANES_PER_UNIT}, "
                f"got {self.equivalent_macs}"
            )
        if self.bits_per_cycle not in (1, 2, 4, 8, 16):
            raise ValueError(
                f"bits_per_cycle must divide 16, got {self.bits_per_cycle}"
            )
        if self.window_fanout < 1 or self.equivalent_macs % self.window_fanout:
            raise ValueError(
                f"window_fanout must divide equivalent_macs, got "
                f"{self.window_fanout}"
            )

    @property
    def filter_rows(self) -> int:
        """Filters processed concurrently (SIP rows)."""
        return self.equivalent_macs // self.window_fanout

    @property
    def window_columns(self) -> int:
        """Windows processed concurrently (SIP columns)."""
        return (LANES_PER_UNIT // self.bits_per_cycle) * self.window_fanout

    @property
    def num_sips(self) -> int:
        return self.filter_rows * self.window_columns

    @property
    def lanes(self) -> int:
        """Weight/activation lanes per SIP (terms per step)."""
        return LANES_PER_UNIT

    @property
    def weight_bus_bits(self) -> int:
        """Weight bits delivered per cycle (one bit plane for one column)."""
        return self.filter_rows * LANES_PER_UNIT

    @property
    def activation_bus_bits(self) -> int:
        """Activation bits delivered per cycle across all columns."""
        return self.window_columns * LANES_PER_UNIT * self.bits_per_cycle

    def steps_for_activation_bits(self, activation_bits: float) -> float:
        """Serial steps needed to stream ``activation_bits`` activation bits.

        Accepts fractional (average, dynamically reduced) precisions; integer
        precisions give the exact ``ceil(Pa / b)``.
        """
        if activation_bits <= 0:
            raise ValueError(
                f"activation_bits must be > 0, got {activation_bits}"
            )
        if float(activation_bits).is_integer():
            return float(ceil_div(int(activation_bits), self.bits_per_cycle))
        return activation_bits / self.bits_per_cycle


@dataclass(frozen=True)
class ConvSchedule:
    """Tiling of one convolutional layer onto the SIP grid."""

    geometry: LoomGeometry
    windows: int
    terms: int
    filters: int
    window_chunks: int
    term_chunks: int
    filter_chunks: int
    activation_serial_steps: float
    weight_serial_bits: float
    weight_load_cycles: int
    filter_replication: int = 1

    @property
    def passes(self) -> int:
        """Number of grid passes (each processes one 16-term chunk)."""
        return self.window_chunks * self.term_chunks * self.filter_chunks

    @property
    def cycles_per_pass(self) -> float:
        """Serial cycles per pass: activation steps for each weight bit plane."""
        return self.activation_serial_steps * self.weight_serial_bits

    @property
    def total_cycles(self) -> float:
        """Total layer cycles, including the (pipelined) weight-load fill."""
        return self.passes * self.cycles_per_pass + self.weight_load_cycles

    @property
    def occupancy(self) -> float:
        """Fraction of SIP rows/columns doing useful work, averaged over passes."""
        rows_used = min(self.geometry.filter_rows,
                        self.filters * self.filter_replication)
        row_use = rows_used / self.geometry.filter_rows / self.filter_chunks
        effective_columns = self.geometry.window_columns * self.filter_replication
        col_use = self.windows / (self.window_chunks * effective_columns)
        return min(1.0, row_use) * min(1.0, col_use)


@dataclass(frozen=True)
class FCSchedule:
    """Tiling of one fully-connected layer onto the SIP grid."""

    geometry: LoomGeometry
    outputs: int
    terms: int
    cascade_slices: int
    output_chunks: int
    term_chunks: int
    activation_serial_steps: float
    weight_serial_bits: float
    stagger_cycles: int
    reduction_cycles: int

    @property
    def cycles_per_chunk(self) -> float:
        """Cycles to process one 16-term chunk of one output slice."""
        return self.activation_serial_steps * self.weight_serial_bits

    @property
    def total_cycles(self) -> float:
        return (self.output_chunks * self.term_chunks * self.cycles_per_chunk
                + self.stagger_cycles + self.reduction_cycles)

    @property
    def concurrent_outputs(self) -> int:
        """Outputs in flight simultaneously (after cascading)."""
        return max(1, self.geometry.num_sips // self.cascade_slices)

    @property
    def occupancy(self) -> float:
        per_pass_outputs = min(self.outputs, self.concurrent_outputs)
        return (per_pass_outputs * self.cascade_slices) / self.geometry.num_sips


def choose_cascade_slices(outputs: int, geometry: LoomGeometry) -> int:
    """Pick the number of cascade slices for an FCL with ``outputs`` outputs.

    Cascading splits each output's inner product along the bit/term dimension
    over several SIPs of the same row, so a layer with fewer outputs than
    SIPs can still keep the grid busy.  Slices are bounded by the number of
    SIPs in a row (the window columns).
    """
    if outputs < 1:
        raise ValueError(f"outputs must be >= 1, got {outputs}")
    if outputs >= geometry.num_sips:
        return 1
    slices = geometry.num_sips // outputs
    return max(1, min(geometry.window_columns, slices))


def schedule_conv_layer(
    layer: LayerWithPrecision,
    geometry: LoomGeometry,
    activation_serial_bits: Optional[float] = None,
    weight_serial_bits: Optional[float] = None,
    replicate_filters: bool = False,
) -> ConvSchedule:
    """Build the schedule for a convolutional layer.

    ``activation_serial_bits`` / ``weight_serial_bits`` default to the
    layer's profile precisions; the Loom model passes dynamically-reduced
    activation precisions and (for the Table 4 experiment) per-group
    effective weight precisions instead.

    ``replicate_filters`` enables the mapping the paper relies on to keep all
    SIPs busy ("an output activation must be assigned to each SIP"): when a
    layer has fewer filters than the grid has rows, the filters are
    replicated across the idle rows and each copy processes a different set
    of windows, turning row under-utilisation into extra window parallelism.
    Disabling it models a rigid one-filter-per-row assignment (used by the
    tiling ablation benchmark).
    """
    if not layer.is_conv:
        raise ValueError(f"layer {layer.name!r} is not convolutional")
    # Conv2D and MatMul (attention work is CVL-shaped) share this interface.
    conv: Conv2D = layer.layer  # type: ignore[assignment]
    windows = conv.num_windows(layer.input_shape)
    terms = conv.window_size(layer.input_shape)
    filters = conv.out_channels
    act_bits = (layer.precision.activation_bits
                if activation_serial_bits is None else activation_serial_bits)
    weight_bits = (layer.precision.weight_bits
                   if weight_serial_bits is None else weight_serial_bits)
    if weight_bits <= 0:
        raise ValueError(f"weight precision must be > 0, got {weight_bits}")
    steps = geometry.steps_for_activation_bits(act_bits)
    term_chunks = ceil_div(terms, geometry.lanes)
    filter_chunks = ceil_div(filters, geometry.filter_rows)
    replication = 1
    if replicate_filters and filters < geometry.filter_rows:
        # Idle rows take copies of the filters, each copy working on its own
        # set of windows; never replicate beyond what the window count can use.
        replication = max(1, geometry.filter_rows // filters)
        max_useful = max(1, ceil_div(windows, geometry.window_columns))
        replication = min(replication, max_useful)
    window_chunks = ceil_div(windows, geometry.window_columns * replication)
    # Weight bit planes are loaded in parallel for all rows in one cycle; the
    # loads are pipelined with compute, leaving only the initial fill exposed.
    weight_load_cycles = 1
    return ConvSchedule(
        geometry=geometry,
        windows=windows,
        terms=terms,
        filters=filters,
        window_chunks=window_chunks,
        term_chunks=term_chunks,
        filter_chunks=filter_chunks,
        activation_serial_steps=steps,
        weight_serial_bits=float(weight_bits),
        weight_load_cycles=weight_load_cycles,
        filter_replication=replication,
    )


def schedule_fc_layer(
    layer: LayerWithPrecision,
    geometry: LoomGeometry,
    weight_serial_bits: Optional[float] = None,
    use_cascading: bool = True,
) -> FCSchedule:
    """Build the schedule for a fully-connected layer.

    Fully-connected performance depends only on the weight precision: each
    weight bit plane is reused across the 16 activation bits, and the
    column-staggered weight loading keeps the single weight bus fully busy,
    so shorter activations cannot shorten the layer (they do reduce traffic).
    """
    if not layer.is_fc:
        raise ValueError(f"layer {layer.name!r} is not fully connected")
    fc: FullyConnected = layer.layer  # type: ignore[assignment]
    outputs = fc.out_features
    terms = layer.input_shape.size
    weight_bits = (layer.precision.weight_bits
                   if weight_serial_bits is None else weight_serial_bits)
    if weight_bits <= 0:
        raise ValueError(f"weight precision must be > 0, got {weight_bits}")
    slices = choose_cascade_slices(outputs, geometry) if use_cascading else 1
    concurrent = max(1, geometry.num_sips // slices)
    output_chunks = ceil_div(outputs, concurrent)
    terms_per_slice = ceil_div(terms, slices)
    term_chunks = ceil_div(terms_per_slice, geometry.lanes)
    # Activations always stream all 16 bits (b per cycle).
    activation_steps = geometry.steps_for_activation_bits(LANES_PER_UNIT)
    stagger = geometry.window_columns - 1
    reduction = (slices - 1) if slices > 1 else 0
    return FCSchedule(
        geometry=geometry,
        outputs=outputs,
        terms=terms,
        cascade_slices=slices,
        output_chunks=output_chunks,
        term_chunks=term_chunks,
        activation_serial_steps=activation_steps,
        weight_serial_bits=float(weight_bits),
        stagger_cycles=stagger,
        reduction_cycles=reduction,
    )
