"""Event-driven cycle-level simulation of the Loom SIP grid.

Where :mod:`repro.core.scheduler` computes closed-form cycle counts, this
module actually *executes* a schedule on the
:class:`repro.sim.engine.CycleEngine`: weight bit-plane loads contend for the
single weight bus, columns progress independently, and the layer finishes
when the last SIP column commits its last weight plane.  Tests assert the
event-driven counts match the analytical model on the tilings used by the
experiments, which is the cross-check the paper's custom simulator provided.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scheduler import ConvSchedule, FCSchedule
from repro.sim.engine import CycleEngine

__all__ = ["LoomTileSimulator", "TileSimResult"]


@dataclass(frozen=True)
class TileSimResult:
    """Outcome of one event-driven layer simulation."""

    cycles: int
    weight_plane_loads: int
    compute_steps: int
    events: int


class LoomTileSimulator:
    """Executes Loom schedules event by event.

    The simulator models the two structural hazards that shape Loom's timing:

    * the weight bus can deliver one bit plane (for one column, or for all
      rows of the grid in CVL mode) per cycle, and
    * a column cannot start multiplying a weight plane before that plane has
      been loaded into its weight registers.
    """

    def __init__(self) -> None:
        self._engine = CycleEngine()

    # -- convolutional layers -----------------------------------------------------

    def run_conv(self, schedule: ConvSchedule) -> TileSimResult:
        """Execute a convolutional schedule.

        In CVL mode every column processes a different window but shares the
        same weights, so a single bus transfer loads one weight bit plane for
        the whole grid.  Within a pass the grid spends ``steps`` cycles per
        weight plane; the next plane's load is pipelined with the current
        plane's compute, so only the very first load is exposed.
        """
        steps = schedule.activation_serial_steps
        weight_bits = schedule.weight_serial_bits
        if not float(steps).is_integer() or not float(weight_bits).is_integer():
            raise ValueError(
                "the event-driven simulator requires integer precisions; "
                "use the analytical model for fractional (dynamic) precisions"
            )
        steps = int(steps)
        weight_bits = int(weight_bits)
        engine = CycleEngine()
        state = {"loads": 0, "compute_steps": 0}

        total_planes = schedule.passes * weight_bits

        def load_plane(plane_index: int) -> None:
            state["loads"] += 1
            # Compute for this plane occupies the next `steps` cycles.
            for s in range(steps):
                engine.schedule(1 + s, lambda: state.__setitem__(
                    "compute_steps", state["compute_steps"] + 1))
            if plane_index + 1 < total_planes:
                # The next plane's (single-cycle) load is pipelined under the
                # current plane's compute.
                engine.schedule(steps, lambda i=plane_index + 1: load_plane(i))

        # The very first load is exposed (cycle 0 -> compute starts at cycle 1),
        # which is the weight_load_cycles fill the analytical model charges.
        engine.schedule(0, lambda: load_plane(0))
        cycles = engine.run() + schedule.weight_load_cycles
        return TileSimResult(
            cycles=cycles,
            weight_plane_loads=state["loads"],
            compute_steps=state["compute_steps"],
            events=engine.events_processed,
        )

    # -- fully-connected layers ----------------------------------------------------

    def run_fc(self, schedule: FCSchedule) -> TileSimResult:
        """Execute a fully-connected schedule.

        Each column owns a different set of outputs (or slices of outputs when
        cascading) and needs the weight bus for one cycle per weight plane per
        term chunk.  The bus grants one load per cycle, so the columns start
        staggered by one cycle and stay staggered; the layer ends when the
        last column finishes its last chunk, plus the cascade-reduction
        cycles when outputs were sliced across SIPs.
        """
        steps = schedule.activation_serial_steps
        weight_bits = schedule.weight_serial_bits
        if not float(steps).is_integer() or not float(weight_bits).is_integer():
            raise ValueError(
                "the event-driven simulator requires integer precisions; "
                "use the analytical model for fractional (dynamic) precisions"
            )
        steps = int(steps)
        weight_bits = int(weight_bits)
        columns = schedule.geometry.window_columns
        planes_per_column = (schedule.output_chunks * schedule.term_chunks
                             * weight_bits)
        engine = CycleEngine()
        state = {"loads": 0, "compute_steps": 0, "bus_busy_until": -1,
                 "finish": 0}

        def request_load(column: int, plane: int) -> None:
            # Arbitrate the weight bus: one load per cycle, FIFO order.
            grant = max(engine.now, state["bus_busy_until"] + 1)
            state["bus_busy_until"] = grant
            engine.schedule_at(grant, lambda c=column, p=plane: do_load(c, p))

        def do_load(column: int, plane: int) -> None:
            state["loads"] += 1
            for s in range(steps):
                engine.schedule(1 + s, lambda: state.__setitem__(
                    "compute_steps", state["compute_steps"] + 1))
            finish_cycle = engine.now + steps
            if plane + 1 < planes_per_column:
                # Next plane's load can be requested so that it is ready when
                # this plane's compute drains.
                engine.schedule(steps, lambda c=column, p=plane + 1:
                                request_load(c, p))
            else:
                state["finish"] = max(state["finish"], finish_cycle)

        for column in range(columns):
            engine.schedule_at(column, lambda c=column: request_load(c, 0))
        engine.run()
        cycles = state["finish"] + schedule.reduction_cycles
        return TileSimResult(
            cycles=cycles,
            weight_plane_loads=state["loads"],
            compute_steps=state["compute_steps"],
            events=engine.events_processed,
        )
