"""Vectorized closed-form tile math for all four accelerator models.

The scalar models (:mod:`repro.core.scheduler` / :mod:`repro.core.loom`,
:mod:`repro.accelerators`) derive a layer's cycle count one layer at a time,
and the event-driven :class:`repro.core.tile.LoomTileSimulator` executes the
same schedules callback by callback as the ground truth.  This module is the
third leg: the same closed forms expressed as NumPy array expressions, so a
whole network's layers (and, through :mod:`repro.sim.fastpath`, a whole batch
of precision groups) are costed in a handful of vector operations.

Exactness contract
------------------
Every function here mirrors its scalar counterpart *operation for operation*
(the same order of multiplications and additions, the same integer/float
promotions), so the results are bit-identical IEEE doubles, not merely close.
The differential harness in :mod:`repro.sim.validate` and the parametrized
tests in ``tests/test_fastpath.py`` enforce this across the full network zoo;
if you change a formula in the scalar model, change it here in lockstep (or
the validator will tell you).

All functions accept NumPy integer/float arrays (or scalars) and broadcast
elementwise; integer inputs must stay below 2**53 for the intermediate
products to remain exact in float64, which holds by orders of magnitude for
every network the paper evaluates.

Unlike their scalar counterparts these helpers do *not* re-validate their
operands on every call: they sit in the fast path's inner loop (where an
``np.any`` guard on a 10-element array costs as much as the arithmetic), and
their inputs come from :class:`repro.sim.fastpath.LayerTable` columns that
were validated when the layers were resolved.  :func:`check_table_operands`
performs the full set of range checks once per table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerators.base import LANES_PER_UNIT
from repro.core.scheduler import LoomGeometry

__all__ = [
    "ceil_div_array",
    "check_table_operands",
    "effective_activation_bits_array",
    "effective_weight_bits_array",
    "steps_for_activation_bits_array",
    "PlaneGeometry",
    "loom_conv_cycles_array",
    "loom_fc_cycles_array",
    "dpnn_conv_cycles_array",
    "dpnn_fc_cycles_array",
    "stripes_conv_cycles_array",
]


def ceil_div_array(a, b):
    """Elementwise integer ceiling division (mirrors ``base.ceil_div``).

    Operands must already be non-negative / positive respectively (see
    :func:`check_table_operands`).
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    return -(-a // b)


def check_table_operands(windows, terms, outputs, act_bits, weight_bits):
    """Range-check layer quantities once, before entering the closed forms.

    Mirrors the per-call validations of the scalar schedules (positive
    precisions, non-negative work counts); called by
    ``repro.sim.fastpath.build_layer_table`` so the per-layer helpers can
    stay guard-free.
    """
    if np.any(np.asarray(windows) < 0) or np.any(np.asarray(terms) < 0):
        raise ValueError("windows/terms must be >= 0")
    if np.any(np.asarray(outputs) < 1):
        raise ValueError("outputs must be >= 1")
    if np.any(np.asarray(act_bits) < 1):
        raise ValueError("activation precision must be >= 1")
    if np.any(np.asarray(weight_bits) < 1):
        raise ValueError("weight precision must be >= 1")


# -- dynamic precision --------------------------------------------------------


def effective_activation_bits_array(
    profile_bits,
    enabled: bool,
    activation_reduction: float,
    bits_per_cycle: int = 1,
):
    """Vector mirror of ``DynamicPrecisionModel.effective_activation_bits``."""
    profile_bits = np.asarray(profile_bits, dtype=np.int64)
    if bits_per_cycle < 1:
        raise ValueError(f"bits_per_cycle must be >= 1, got {bits_per_cycle}")
    rounded_profile = bits_per_cycle * (-(-profile_bits // bits_per_cycle))
    if not enabled:
        return rounded_profile.astype(np.float64)
    effective = activation_reduction * profile_bits
    if bits_per_cycle > 1:
        effective = effective + (bits_per_cycle - 1) / 2.0
    return np.minimum(np.maximum(1.0, effective), rounded_profile)


def effective_weight_bits_array(profile_bits):
    """Vector mirror of ``DynamicPrecisionModel.effective_weight_bits``."""
    profile_bits = np.asarray(profile_bits, dtype=np.float64)
    return np.minimum(np.maximum(1.0, profile_bits), 16.0)


# -- Loom schedules -----------------------------------------------------------


def steps_for_activation_bits_array(activation_bits, bits_per_cycle: int):
    """Vector mirror of ``LoomGeometry.steps_for_activation_bits``.

    Integral precisions take the exact ``ceil(Pa / b)`` path; fractional
    (dynamically reduced averages) divide straight through, exactly as the
    scalar method does.
    """
    activation_bits = np.asarray(activation_bits, dtype=np.float64)
    integral = activation_bits == np.floor(activation_bits)
    # The truncating cast only feeds elements selected by ``integral``.
    as_int = activation_bits.astype(np.int64)
    exact = (-(-as_int // bits_per_cycle)).astype(np.float64)
    return np.where(integral, exact, activation_bits / bits_per_cycle)


@dataclass(frozen=True, eq=False)
class PlaneGeometry:
    """Array-valued :class:`~repro.core.scheduler.LoomGeometry`: one SIP grid
    shape per plane row.

    The Loom cycle kernels below consume geometry fields exclusively through
    elementwise ufunc arithmetic, so a geometry whose ``filter_rows`` /
    ``window_columns`` / ``num_sips`` are per-row arrays broadcasts through
    them unchanged -- each row is costed against its own design's grid, bit
    for bit as if the matching scalar geometry had been passed row by row.
    This is what lets :mod:`repro.sim.batched` evaluate *many accelerator
    design points* in a single closed-form pass.

    ``lanes`` and ``bits_per_cycle`` stay scalar: lanes is the architectural
    constant ``LANES_PER_UNIT`` for every Loom configuration, and designs
    with different activation bits-per-cycle go into separate planes (the
    serial-step selection branches on it at the Python level).
    """

    filter_rows: np.ndarray
    window_columns: np.ndarray
    num_sips: np.ndarray
    bits_per_cycle: int = 1
    lanes: int = LANES_PER_UNIT

    def take(self, indices) -> "PlaneGeometry":
        """The geometry rows selected by ``indices`` (conv/fc gathers)."""
        return PlaneGeometry(
            filter_rows=self.filter_rows[indices],
            window_columns=self.window_columns[indices],
            num_sips=self.num_sips[indices],
            bits_per_cycle=self.bits_per_cycle,
            lanes=self.lanes,
        )

    def steps_for_activation_bits(self, activation_bits: float) -> float:
        """Scalar delegate (``bits_per_cycle`` is uniform across the plane)."""
        return LoomGeometry(
            bits_per_cycle=self.bits_per_cycle
        ).steps_for_activation_bits(activation_bits)


def loom_conv_cycles_array(
    windows,
    terms,
    filters,
    activation_serial_steps,
    weight_serial_bits,
    geometry: LoomGeometry,
    replicate_filters: bool = False,
) -> np.ndarray:
    """Total Loom CVL cycles: mirrors ``ConvSchedule.total_cycles`` on the
    schedule that ``schedule_conv_layer`` builds (including the filter
    replication mapping and the exposed weight-load fill cycle).

    ``geometry`` may be a scalar :class:`LoomGeometry` or an array-valued
    :class:`PlaneGeometry` (one grid shape per row)."""
    windows = np.asarray(windows, dtype=np.int64)
    terms = np.asarray(terms, dtype=np.int64)
    filters = np.asarray(filters, dtype=np.int64)
    steps = np.asarray(activation_serial_steps, dtype=np.float64)
    weight_bits = np.asarray(weight_serial_bits, dtype=np.float64)
    term_chunks = ceil_div_array(terms, geometry.lanes)
    filter_chunks = ceil_div_array(filters, geometry.filter_rows)
    replication = np.ones_like(filters)
    if replicate_filters:
        candidate = np.maximum(1, geometry.filter_rows // np.maximum(filters, 1))
        max_useful = np.maximum(
            1, ceil_div_array(windows, geometry.window_columns)
        )
        replication = np.where(
            filters < geometry.filter_rows,
            np.minimum(candidate, max_useful),
            replication,
        )
    window_chunks = ceil_div_array(windows, geometry.window_columns * replication)
    passes = window_chunks * term_chunks * filter_chunks
    # passes * cycles_per_pass + weight_load_cycles, in that order.
    return passes * (steps * weight_bits) + 1


def loom_fc_cycles_array(
    outputs,
    terms,
    weight_serial_bits,
    geometry: LoomGeometry,
    use_cascading: bool = True,
) -> np.ndarray:
    """Total Loom FCL cycles: mirrors ``FCSchedule.total_cycles`` on the
    schedule ``schedule_fc_layer`` builds (cascade slicing, column stagger
    and the cascade-reduction tail).

    ``geometry`` may be a scalar :class:`LoomGeometry` or an array-valued
    :class:`PlaneGeometry` (one grid shape per row)."""
    outputs = np.asarray(outputs, dtype=np.int64)
    terms = np.asarray(terms, dtype=np.int64)
    weight_bits = np.asarray(weight_serial_bits, dtype=np.float64)
    if use_cascading:
        raw = geometry.num_sips // np.maximum(outputs, 1)
        slices = np.where(
            outputs >= geometry.num_sips,
            np.ones_like(outputs),
            np.maximum(1, np.minimum(geometry.window_columns, raw)),
        )
    else:
        slices = np.ones_like(outputs)
    concurrent = np.maximum(1, geometry.num_sips // slices)
    output_chunks = ceil_div_array(outputs, concurrent)
    terms_per_slice = ceil_div_array(terms, slices)
    term_chunks = ceil_div_array(terms_per_slice, geometry.lanes)
    activation_steps = geometry.steps_for_activation_bits(LANES_PER_UNIT)
    stagger = geometry.window_columns - 1
    reduction = np.where(slices > 1, slices - 1, np.zeros_like(slices))
    return (output_chunks * term_chunks * (activation_steps * weight_bits)
            + stagger + reduction)


# -- bit-parallel baseline ----------------------------------------------------


def dpnn_conv_cycles_array(windows, terms, filters, num_ip_units: int):
    """DPNN CVL cycles (``DPNN._conv_cycles``), as float64."""
    windows = np.asarray(windows, dtype=np.int64)
    term_chunks = ceil_div_array(terms, LANES_PER_UNIT)
    filter_chunks = ceil_div_array(filters, num_ip_units)
    return (windows * term_chunks * filter_chunks).astype(np.float64)


def dpnn_fc_cycles_array(terms, outputs, num_ip_units: int):
    """DPNN FCL cycles (``DPNN._fc_cycles``), as float64."""
    term_chunks = ceil_div_array(terms, LANES_PER_UNIT)
    filter_chunks = ceil_div_array(outputs, num_ip_units)
    return (term_chunks * filter_chunks).astype(np.float64)


# -- Stripes / DStripes -------------------------------------------------------


def stripes_conv_cycles_array(
    windows,
    terms,
    filters,
    activation_serial_bits,
    filter_lanes: int,
    window_lanes: int,
):
    """Stripes CVL cycles (``Stripes.compute_cycles`` conv branch)."""
    serial_bits = np.asarray(activation_serial_bits, dtype=np.float64)
    window_chunks = ceil_div_array(windows, window_lanes)
    term_chunks = ceil_div_array(terms, LANES_PER_UNIT)
    filter_chunks = ceil_div_array(filters, filter_lanes)
    return window_chunks * term_chunks * filter_chunks * serial_bits


