"""Exploration engine: evaluate design points and assemble sweep results.

The :class:`PointEvaluator` turns :class:`~repro.explore.space.DesignPoint`\\ s
into metrics by dispatching the point's simulation *and* its baseline
simulation (same network and configuration on the reference design, DPNN by
default) through one shared :class:`~repro.sim.jobs.JobExecutor` -- so a sweep
of N points needs at most N + |distinct configs x networks| simulations, the
baselines dedupe across points, and everything lands in the result cache for
the next strategy round or the next invocation.

:func:`explore` is the one-call entry point: expand a spec, drive a search
strategy, rank the evaluated points by Pareto dominance and return an
:class:`ExplorationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.sim.jobs import (
    AcceleratorSpec,
    SimJob,
    build_accelerator,
    get_default_executor,
)
from repro.sim.results import compare
from repro.explore.frontier import (
    Objective,
    dominance_ranks,
    resolve_objectives,
)
from repro.explore.space import DesignPoint, SweepSpec

__all__ = ["EvaluatedPoint", "PointEvaluator", "ExplorationResult", "explore"]


@dataclass(frozen=True)
class EvaluatedPoint:
    """One design point with its measured metrics.

    ``metrics`` always contains ``cycles``, ``energy_pj``, ``fps``,
    ``speedup``, ``energy_efficiency``, ``area_mm2`` and ``area_ratio``
    (the last four relative to the evaluator's baseline design).
    """

    point: DesignPoint
    baseline: str
    metrics: Dict[str, float] = field(default_factory=dict)

    def metric(self, key: str) -> float:
        return self.metrics[key]

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (the ``loom-repro serve`` /explore wire format)."""
        from repro.explore.space import encode_parameter

        return {
            "point": {name: encode_parameter(name, value)
                      for name, value in self.point.items()},
            "baseline": self.baseline,
            "metrics": dict(self.metrics),
        }


class PointEvaluator:
    """Evaluates design points through a shared executor, with memoisation.

    Repeated evaluations of the same point (adaptive strategies revisit their
    current optimum constantly) are answered from an in-memory memo without
    touching the executor at all.
    """

    def __init__(self, space: SweepSpec, executor=None,
                 baseline: str = "dpnn", engine: str = None) -> None:
        self.space = space
        self.executor = executor if executor is not None else get_default_executor()
        self.baseline_spec = AcceleratorSpec.create(baseline)
        self.engine = engine
        self._memo: Dict[DesignPoint, EvaluatedPoint] = {}

    @property
    def evaluated_count(self) -> int:
        return len(self._memo)

    def evaluate(self, points: Sequence[DesignPoint]) -> List[EvaluatedPoint]:
        """Evaluate ``points`` (one batch through the executor); ordered 1:1."""
        fresh: List[DesignPoint] = []
        seen = set(self._memo)
        for point in points:
            if point not in seen:
                seen.add(point)
                fresh.append(point)
        if fresh:
            jobs: List[SimJob] = []
            for point in fresh:
                job = self.space.job(point)
                jobs.append(job)
                jobs.append(SimJob(network=job.network,
                                   accelerator=self.baseline_spec,
                                   config=job.config))
            results = self.executor.run(jobs, engine=self.engine)
            for index, point in enumerate(fresh):
                design_result = results[2 * index]
                baseline_result = results[2 * index + 1]
                self._memo[point] = self._evaluated(
                    point, design_result, baseline_result
                )
        return [self._memo[point] for point in points]

    def _evaluated(self, point, design_result, baseline_result) -> EvaluatedPoint:
        job = self.space.job(point)
        comparison = compare(design_result, baseline_result)
        design_area = build_accelerator(job.accelerator, job.config).total_area_mm2()
        baseline_area = build_accelerator(self.baseline_spec,
                                          job.config).total_area_mm2()
        metrics = {
            "cycles": design_result.total_cycles(),
            "energy_pj": design_result.total_energy_pj(),
            "fps": design_result.frames_per_second(),
            "speedup": comparison.speedup,
            "energy_efficiency": comparison.energy_efficiency,
            "area_mm2": design_area,
            "area_ratio": design_area / baseline_area,
        }
        return EvaluatedPoint(point=point, baseline=baseline_result.accelerator,
                              metrics=metrics)


@dataclass
class ExplorationResult:
    """What one exploration run found.

    ``evaluated`` lists every point the strategy measured, in evaluation
    order; ``ranks`` aligns with it (0 = Pareto-optimal among the evaluated
    set); ``frontier`` is the rank-0 subset in the same order.
    """

    space: SweepSpec
    strategy: str
    objectives: Tuple[Objective, ...]
    evaluated: List[EvaluatedPoint]
    ranks: List[int]
    space_points: int

    @property
    def frontier(self) -> List[EvaluatedPoint]:
        return [ep for ep, rank in zip(self.evaluated, self.ranks) if rank == 0]

    def best(self, objective: Union[str, Objective]) -> EvaluatedPoint:
        """The single best evaluated point for one objective."""
        (resolved,) = resolve_objectives([objective]) \
            if not isinstance(objective, Objective) else (objective,)
        if not self.evaluated:
            raise ValueError("no evaluated points")
        chooser = max if resolved.maximize else min
        return chooser(self.evaluated, key=lambda ep: resolved.value(ep.metrics))

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (the ``loom-repro serve`` /explore wire format).

        ``evaluated`` and ``ranks`` stay aligned 1:1; the frontier is the
        rank-0 subset, so clients can reconstruct it without a second field.
        """
        return {
            "space": self.space.to_dict(),
            "strategy": self.strategy,
            "objectives": [objective.name for objective in self.objectives],
            "evaluated": [ep.to_dict() for ep in self.evaluated],
            "ranks": list(self.ranks),
            "space_points": self.space_points,
        }


def explore(
    space: SweepSpec,
    strategy: Union[str, "SearchStrategy", None] = None,
    objectives: Union[str, Sequence[Union[str, Objective]]] =
        ("speedup", "energy_efficiency", "area"),
    executor=None,
    baseline: str = "dpnn",
    engine: str = None,
) -> ExplorationResult:
    """Run one design-space exploration end to end.

    Parameters
    ----------
    space:
        The sweep specification to explore.
    strategy:
        A strategy name (``"grid"``, ``"random"``, ``"coordinate"``), a
        :class:`~repro.explore.search.SearchStrategy` instance, or ``None``
        for exhaustive grid search.
    objectives:
        Objective names (or instances) to rank the frontier over.
    executor:
        The shared :class:`~repro.sim.jobs.JobExecutor`; defaults to the
        process-wide one.
    baseline:
        Accelerator kind the relative metrics are measured against.
    engine:
        Simulation engine each candidate batch is dispatched with
        (``"fast"``, ``"event"`` or ``"batched"``); ``None`` keeps the
        executor's own setting.  ``"batched"`` hands every strategy round's
        candidate set (and the deduplicated baselines) to
        :func:`repro.sim.batched.simulate_jobs_batched` as whole design
        groups -- same results, one tensor pass.
    """
    from repro.explore.search import resolve_strategy

    resolved_objectives = resolve_objectives(objectives)
    resolved_strategy = resolve_strategy(strategy)
    evaluator = PointEvaluator(space, executor=executor, baseline=baseline,
                               engine=engine)
    evaluated = resolved_strategy.run(space, evaluator, resolved_objectives)
    ranks = dominance_ranks(evaluated, resolved_objectives)
    return ExplorationResult(
        space=space,
        strategy=resolved_strategy.name,
        objectives=resolved_objectives,
        evaluated=evaluated,
        ranks=ranks,
        space_points=len(space.points()),
    )
