"""Exploration engine: evaluate design points and assemble sweep results.

The :class:`PointEvaluator` turns :class:`~repro.explore.space.DesignPoint`\\ s
into metrics by dispatching the point's simulation *and* its baseline
simulation (same network and configuration on the reference design, DPNN by
default) through one shared :class:`~repro.sim.jobs.JobExecutor` -- so a sweep
of N points needs at most N + |distinct configs x networks| simulations, the
baselines dedupe across points, and everything lands in the result cache for
the next strategy round or the next invocation.

:func:`drive_search` is the single ask/tell driver loop every strategy runs
under: it owns evaluation (strategies only *propose* candidates and *observe*
results), the ``budget`` cap on true simulations and trace recording, so
adaptive strategies, the service's per-round streaming and budget accounting
all share one code path.

:func:`explore` is the one-call entry point: expand a spec, drive a search
strategy through :func:`drive_search`, rank the evaluated points by Pareto
dominance and return an :class:`ExplorationResult`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.sim.jobs import (
    AcceleratorSpec,
    SimJob,
    build_accelerator,
    get_default_executor,
)
from repro.sim.results import compare
from repro.explore.frontier import (
    Objective,
    dominance_ranks,
    resolve_objectives,
)
from repro.explore.space import DesignPoint, SweepSpec

__all__ = [
    "EvaluatedPoint",
    "PointEvaluator",
    "SearchState",
    "drive_search",
    "ExplorationResult",
    "explore",
]


@dataclass(frozen=True)
class EvaluatedPoint:
    """One design point with its measured metrics.

    ``metrics`` always contains ``cycles``, ``energy_pj``, ``fps``,
    ``speedup``, ``energy_efficiency``, ``area_mm2`` and ``area_ratio``
    (the last four relative to the evaluator's baseline design).
    """

    point: DesignPoint
    baseline: str
    metrics: Dict[str, float] = field(default_factory=dict)

    def metric(self, key: str) -> float:
        return self.metrics[key]

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (the ``loom-repro serve`` /explore wire format)."""
        from repro.explore.space import encode_parameter

        return {
            "point": {name: encode_parameter(name, value)
                      for name, value in self.point.items()},
            "baseline": self.baseline,
            "metrics": dict(self.metrics),
        }


class PointEvaluator:
    """Evaluates design points through a shared executor, with memoisation.

    Repeated evaluations of the same point (adaptive strategies revisit their
    current optimum constantly) are answered from an in-memory memo without
    touching the executor at all.
    """

    def __init__(self, space: SweepSpec, executor=None,
                 baseline: str = "dpnn", engine: str = None) -> None:
        self.space = space
        self.executor = executor if executor is not None else get_default_executor()
        self.baseline_spec = AcceleratorSpec.create(baseline)
        self.engine = engine
        self._memo: Dict[DesignPoint, EvaluatedPoint] = {}

    @property
    def evaluated_count(self) -> int:
        return len(self._memo)

    def known(self, point: DesignPoint) -> bool:
        """Whether ``point`` was already evaluated through this evaluator."""
        return point in self._memo

    def warm(self, points: Sequence[DesignPoint]) -> List[DesignPoint]:
        """The subset of ``points`` that cost no true simulation to evaluate.

        A point is *warm* when it is already memoised here, or when both its
        design job and its baseline job are answered by the executor's result
        cache (e.g. a previous sweep against the same on-disk store).  The
        budgeted driver treats warm points as free, and surrogate strategies
        seed their training set with them -- thousands of store-warm results
        are a free training corpus.
        """
        from repro.sim.jobs import job_key

        cache = getattr(self.executor, "cache", None)
        warm: List[DesignPoint] = []
        for point in points:
            if point in self._memo:
                warm.append(point)
                continue
            if cache is None:
                continue
            job = self.space.job(point)
            baseline = SimJob(network=job.network,
                              accelerator=self.baseline_spec,
                              config=job.config)
            if (cache.peek(job_key(job)) is not None
                    and cache.peek(job_key(baseline)) is not None):
                warm.append(point)
        return warm

    def evaluate(self, points: Sequence[DesignPoint]) -> List[EvaluatedPoint]:
        """Evaluate ``points`` (one batch through the executor); ordered 1:1."""
        fresh: List[DesignPoint] = []
        seen = set(self._memo)
        for point in points:
            if point not in seen:
                seen.add(point)
                fresh.append(point)
        if fresh:
            jobs: List[SimJob] = []
            for point in fresh:
                job = self.space.job(point)
                jobs.append(job)
                jobs.append(SimJob(network=job.network,
                                   accelerator=self.baseline_spec,
                                   config=job.config))
            results = self.executor.run(jobs, engine=self.engine)
            for index, point in enumerate(fresh):
                design_result = results[2 * index]
                baseline_result = results[2 * index + 1]
                self._memo[point] = self._evaluated(
                    point, design_result, baseline_result
                )
        return [self._memo[point] for point in points]

    def _evaluated(self, point, design_result, baseline_result) -> EvaluatedPoint:
        job = self.space.job(point)
        comparison = compare(design_result, baseline_result)
        design_area = build_accelerator(job.accelerator, job.config).total_area_mm2()
        baseline_area = build_accelerator(self.baseline_spec,
                                          job.config).total_area_mm2()
        metrics = {
            "cycles": design_result.total_cycles(),
            "energy_pj": design_result.total_energy_pj(),
            "fps": design_result.frames_per_second(),
            "speedup": comparison.speedup,
            "energy_efficiency": comparison.energy_efficiency,
            "area_mm2": design_area,
            "area_ratio": design_area / baseline_area,
        }
        return EvaluatedPoint(point=point, baseline=baseline_result.accelerator,
                              metrics=metrics)


class SearchState:
    """What the ask/tell driver shows a strategy between rounds.

    Attributes
    ----------
    space / objectives:
        The sweep being explored and the resolved objective tuple.
    budget:
        The cap on true simulations (``None`` = unlimited).
    spent:
        True simulations charged against the budget so far (stays 0 when no
        budget is set).
    rounds:
        ``propose()`` batches evaluated so far.
    trace:
        Every evaluated point in first-evaluation order, deduplicated -- the
        exact list :func:`drive_search` will return.  Treat it as read-only.
    """

    def __init__(self, space: SweepSpec, objectives: Sequence[Objective],
                 evaluator: PointEvaluator,
                 budget: Optional[int] = None) -> None:
        self.space = space
        self.objectives: Tuple[Objective, ...] = tuple(objectives)
        self.budget = budget
        self.spent = 0
        self.rounds = 0
        self.trace: List[EvaluatedPoint] = []
        self._evaluator = evaluator

    @property
    def remaining(self) -> Optional[int]:
        """True simulations the budget still allows (``None`` = unlimited)."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.spent)

    def known(self, point: DesignPoint) -> bool:
        """Whether ``point`` was already evaluated this run (free to revisit)."""
        return self._evaluator.known(point)

    def warm(self, points: Sequence[DesignPoint]) -> List[DesignPoint]:
        """Subset of ``points`` that are free (memoised or store-warm)."""
        return self._evaluator.warm(points)


def drive_search(
    strategy,
    space: SweepSpec,
    evaluator: PointEvaluator,
    objectives: Sequence[Objective],
    budget: Optional[int] = None,
) -> List[EvaluatedPoint]:
    """Run one search strategy through the ask/tell loop; returns the trace.

    The driver owns the propose -> evaluate -> observe loop: each round the
    strategy's :meth:`~repro.explore.search.SearchStrategy.propose` batch is
    deduplicated, trimmed to the remaining ``budget`` (points already
    measured this run and store-warm points stay free), evaluated in one
    executor batch, recorded into the trace (first-evaluation order,
    deduplicated) and handed back through ``observe()``.  An empty proposal
    batch ends the search.

    Legacy strategies that still override ``run()`` are driven through it
    unchanged -- with a :class:`DeprecationWarning`, and without budget
    support (a budget on a run()-only strategy raises ``ValueError``).
    """
    from repro.explore.search import SearchStrategy

    if budget is not None and budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if type(strategy).run is not SearchStrategy.run:
        warnings.warn(
            f"{type(strategy).__name__} overrides SearchStrategy.run(), "
            "which is deprecated: implement propose()/observe() so the "
            "engine's driver owns evaluation, budgets and trace recording",
            DeprecationWarning, stacklevel=2,
        )
        if budget is not None:
            raise ValueError(
                "a simulation budget needs an ask/tell strategy; "
                f"{type(strategy).__name__} only implements run()"
            )
        return list(strategy.run(space, evaluator, objectives))

    state = SearchState(space, objectives, evaluator, budget=budget)
    strategy.start(state)
    traced = set()
    while True:
        raw = list(strategy.propose(state))
        if not raw:
            break
        state.rounds += 1
        seen_in_batch = set()
        proposals = []
        for point in raw:
            if point not in seen_in_batch:
                seen_in_batch.add(point)
                proposals.append(point)
        kept, dropped = proposals, False
        if budget is not None:
            warm = set(evaluator.warm(proposals))
            kept = []
            for point in proposals:
                if evaluator.known(point) or point in warm:
                    kept.append(point)
                elif state.spent < budget:
                    state.spent += 1
                    kept.append(point)
                else:
                    dropped = True
        evaluated = evaluator.evaluate(kept)
        for ep in evaluated:
            if ep.point not in traced:
                traced.add(ep.point)
                state.trace.append(ep)
        strategy.observe(evaluated)
        if dropped and not kept:
            break  # budget exhausted and nothing in the batch was free
    return list(state.trace)


@dataclass
class ExplorationResult:
    """What one exploration run found.

    ``evaluated`` lists every point the strategy measured, in evaluation
    order; ``ranks`` aligns with it (0 = Pareto-optimal among the evaluated
    set); ``frontier`` is the rank-0 subset in the same order.
    """

    space: SweepSpec
    strategy: str
    objectives: Tuple[Objective, ...]
    evaluated: List[EvaluatedPoint]
    ranks: List[int]
    space_points: int

    @property
    def frontier(self) -> List[EvaluatedPoint]:
        return [ep for ep, rank in zip(self.evaluated, self.ranks) if rank == 0]

    def best(self, objective: Union[str, Objective]) -> EvaluatedPoint:
        """The single best evaluated point for one objective."""
        (resolved,) = resolve_objectives([objective]) \
            if not isinstance(objective, Objective) else (objective,)
        if not self.evaluated:
            raise ValueError("no evaluated points")
        chooser = max if resolved.maximize else min
        return chooser(self.evaluated, key=lambda ep: resolved.value(ep.metrics))

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (the ``loom-repro serve`` /explore wire format).

        ``evaluated`` and ``ranks`` stay aligned 1:1; the frontier is the
        rank-0 subset, so clients can reconstruct it without a second field.
        """
        return {
            "space": self.space.to_dict(),
            "strategy": self.strategy,
            "objectives": [objective.name for objective in self.objectives],
            "evaluated": [ep.to_dict() for ep in self.evaluated],
            "ranks": list(self.ranks),
            "space_points": self.space_points,
        }


def explore(
    space: SweepSpec,
    strategy: Union[str, "SearchStrategy", None] = None,
    objectives: Union[str, Sequence[Union[str, Objective]]] =
        ("speedup", "energy_efficiency", "area"),
    executor=None,
    baseline: str = "dpnn",
    engine: str = None,
    budget: Optional[int] = None,
) -> ExplorationResult:
    """Run one design-space exploration end to end.

    Parameters
    ----------
    space:
        The sweep specification to explore.
    strategy:
        A strategy name (any key of :data:`~repro.explore.search.STRATEGIES`,
        e.g. ``"grid"``, ``"random"``, ``"coordinate"``, ``"surrogate"``), a
        :class:`~repro.explore.search.SearchStrategy` instance, or ``None``
        for exhaustive grid search.
    objectives:
        Objective names (or instances) to rank the frontier over.
    budget:
        Cap on true simulations the whole sweep may issue; points already
        measured this run or warm in the executor's result cache stay free.
        ``None`` (the default) means unlimited.
    executor:
        The shared :class:`~repro.sim.jobs.JobExecutor`; defaults to the
        process-wide one.
    baseline:
        Accelerator kind the relative metrics are measured against.
    engine:
        Simulation engine each candidate batch is dispatched with
        (``"fast"``, ``"event"`` or ``"batched"``); ``None`` keeps the
        executor's own setting.  ``"batched"`` hands every strategy round's
        candidate set (and the deduplicated baselines) to
        :func:`repro.sim.batched.simulate_jobs_batched` as whole design
        groups -- same results, one tensor pass.
    """
    from repro.explore.search import resolve_strategy

    resolved_objectives = resolve_objectives(objectives)
    resolved_strategy = resolve_strategy(strategy)
    evaluator = PointEvaluator(space, executor=executor, baseline=baseline,
                               engine=engine)
    evaluated = drive_search(resolved_strategy, space, evaluator,
                             resolved_objectives, budget=budget)
    ranks = dominance_ranks(evaluated, resolved_objectives)
    return ExplorationResult(
        space=space,
        strategy=resolved_strategy.name,
        objectives=resolved_objectives,
        evaluated=evaluated,
        ranks=ranks,
        space_points=len(space.points()),
    )
