"""Sweep-level reporting: text/markdown tables, frontier views and CSV export.

Extends :mod:`repro.sim.report` (which covers single simulations) to whole
explorations: every evaluated point with its objective metrics and dominance
rank, the Pareto frontier on its own, and a machine-readable CSV with one row
per point (all parameters, all metrics, the rank).
"""

from __future__ import annotations

import csv
import io
from typing import List, Optional, Sequence

from repro.explore.engine import EvaluatedPoint, ExplorationResult
from repro.explore.frontier import Objective
from repro.explore.space import format_parameter
from repro.sim.report import markdown_table

__all__ = ["sweep_table", "frontier_table", "sweep_markdown", "sweep_to_csv"]


def _format_metric(value: float) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return "n/a"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def _objective_headers(objectives: Sequence[Objective]) -> List[str]:
    return [f"{o.name} ({o.direction})" for o in objectives]


def _point_cells(ep: EvaluatedPoint, names: Sequence[str]) -> List[str]:
    return [format_parameter(name, ep.point[name]) for name in names]


def _rows(result: ExplorationResult, evaluated, ranks):
    names = result.space.axis_names
    rows = []
    for ep, rank in zip(evaluated, ranks):
        rows.append(
            _point_cells(ep, names)
            + [_format_metric(o.value(ep.metrics)) for o in result.objectives]
            + [str(rank)]
        )
    return rows


def _headers(result: ExplorationResult) -> List[str]:
    return (list(result.space.axis_names)
            + _objective_headers(result.objectives) + ["rank"])


def _aligned(headers: Sequence[str], rows: Sequence[Sequence[str]],
             title: str) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    lines = [title]
    lines.append("  ".join(h.ljust(w) if i == 0 else h.rjust(w)
                           for i, (h, w) in enumerate(zip(headers, widths))))
    for row in rows:
        lines.append("  ".join(c.ljust(w) if i == 0 else c.rjust(w)
                               for i, (c, w) in enumerate(zip(row, widths))))
    return "\n".join(lines)


def _sorted_by_first_objective(result: ExplorationResult):
    """Evaluated points with their ranks, best-first on the first objective."""
    first = result.objectives[0]
    pairs = list(zip(result.evaluated, result.ranks))
    pairs.sort(key=lambda pair: first.value(pair[0].metrics),
               reverse=first.maximize)
    return pairs


def sweep_table(result: ExplorationResult) -> str:
    """Every evaluated point with objective values and dominance rank."""
    pairs = _sorted_by_first_objective(result)
    title = (f"== design-space exploration: {result.strategy} strategy, "
             f"{len(result.evaluated)}/{result.space_points} feasible points "
             f"evaluated ==\nspace: {result.space.describe()}")
    return _aligned(
        _headers(result),
        _rows(result, [ep for ep, _ in pairs], [r for _, r in pairs]),
        title,
    )


def frontier_table(result: ExplorationResult) -> str:
    """The Pareto-optimal points only (rank 0), best-first."""
    pairs = [(ep, rank) for ep, rank in _sorted_by_first_objective(result)
             if rank == 0]
    objective_names = ", ".join(f"{o.name} {o.direction}"
                                for o in result.objectives)
    title = (f"== Pareto frontier over ({objective_names}): "
             f"{len(pairs)} of {len(result.evaluated)} points ==")
    return _aligned(
        _headers(result),
        _rows(result, [ep for ep, _ in pairs], [r for _, r in pairs]),
        title,
    )


def sweep_markdown(result: ExplorationResult) -> str:
    """The sweep table as GitHub-flavoured markdown."""
    pairs = _sorted_by_first_objective(result)
    return markdown_table(
        _headers(result),
        _rows(result, [ep for ep, _ in pairs], [r for _, r in pairs]),
    )


def sweep_to_csv(result: ExplorationResult,
                 metrics: Optional[Sequence[str]] = None) -> str:
    """One CSV row per evaluated point: parameters, metrics, dominance rank.

    ``metrics`` restricts the metric columns; by default every measured
    metric is exported (not just the requested objectives).
    """
    if not result.evaluated:
        return ""
    parameter_names = list(result.evaluated[0].point)
    metric_names = (list(metrics) if metrics is not None
                    else sorted(result.evaluated[0].metrics))
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(parameter_names + metric_names + ["pareto_rank"])
    for ep, rank in zip(result.evaluated, result.ranks):
        writer.writerow(
            [format_parameter(name, ep.point[name]) for name in parameter_names]
            + [repr(float(ep.metrics[name])) for name in metric_names]
            + [rank]
        )
    return buffer.getvalue()
