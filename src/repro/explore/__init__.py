"""Design-space exploration: sweep specs, search strategies, Pareto frontiers.

The Loom paper is a design-space story -- equivalent-MAC scale, precision
profiles, memory sizing, off-chip channels -- and this package makes such
studies declarative instead of hand-rolled:

* :mod:`repro.explore.space` -- :class:`SweepSpec`: named parameter axes over
  networks, accelerator designs and every ``AcceleratorConfig`` knob, with
  constraint predicates; expands deterministically into deduplicated
  :class:`~repro.sim.jobs.SimJob` lists.
* :mod:`repro.explore.search` -- the ask/tell strategy protocol
  (:meth:`SearchStrategy.propose` / :meth:`SearchStrategy.observe`, driven
  by :func:`repro.explore.engine.drive_search`), the
  :func:`register_strategy` registry, and the built-ins: exhaustive
  :class:`GridSearch`, seeded :class:`RandomSearch` and adaptive
  :class:`CoordinateDescentSearch`, all batching their candidates through
  one shared :class:`~repro.sim.jobs.JobExecutor` so cached results are
  never re-run.
* :mod:`repro.explore.surrogate` -- surrogate-guided exploration:
  :class:`Featurizer`, the :class:`SurrogateModel` protocol (dependency-free
  kernel-ridge/RBF baseline plus optional scikit-learn GP and
  gradient-boosted-tree backends) and :class:`SurrogateSearch`, a
  Bayesian-optimisation strategy that simulates only the acquisition
  function's top candidates each round.
* :mod:`repro.explore.frontier` -- multi-objective :class:`Objective`\\ s,
  Pareto-dominance tests, frontier extraction and dominance ranking.
* :mod:`repro.explore.engine` -- :func:`explore`, the one-call entry point,
  and the :class:`PointEvaluator` that measures each point against its
  baseline design.
* :mod:`repro.explore.report` -- sweep tables, frontier tables, markdown and
  CSV export.

Quick tour::

    from repro.explore import Axis, SweepSpec, explore, frontier_table

    space = SweepSpec(
        axes=[
            Axis("equivalent_macs", (32, 64, 128, 256)),
            Axis("accelerator", ("loom", "loom:bits_per_cycle=2", "dstripes")),
        ],
        base={"network": "alexnet", "dram": "lpddr4-4267"},
    )
    result = explore(space, strategy="grid",
                     objectives=("speedup", "energy_efficiency", "area"))
    print(frontier_table(result))

``loom-repro explore`` exposes the same machinery from the command line, and
``repro.experiments.figure5`` is a thin wrapper over one of these specs.
"""

from repro.explore.engine import (
    EvaluatedPoint,
    ExplorationResult,
    PointEvaluator,
    SearchState,
    drive_search,
    explore,
)
from repro.explore.frontier import (
    OBJECTIVES,
    Objective,
    dominance_ranks,
    dominates,
    pareto_frontier,
    resolve_objectives,
    scalar_score,
)
from repro.explore.report import (
    frontier_table,
    sweep_markdown,
    sweep_table,
    sweep_to_csv,
)
from repro.explore.search import (
    STRATEGIES,
    CoordinateDescentSearch,
    GeneratorStrategy,
    GridSearch,
    RandomSearch,
    SearchStrategy,
    parse_strategy_options,
    register_strategy,
    resolve_strategy,
    strategy_from_request,
)
from repro.explore.surrogate import (
    ACQUISITIONS,
    SURROGATES,
    Featurizer,
    GradientBoostedSurrogate,
    KernelRidgeSurrogate,
    SklearnGPSurrogate,
    SurrogateModel,
    SurrogateSearch,
    expected_improvement,
    register_surrogate,
    resolve_surrogate,
    upper_confidence_bound,
)
from repro.explore.space import (
    CONFIG_PARAMETERS,
    DRAM_CHANNELS,
    NETWORK_PARAMETERS,
    Axis,
    Constraint,
    DesignPoint,
    SweepSpec,
    am_fits_working_set,
    canonical_point,
    encode_parameter,
    job_to_point,
    named_constraint,
    parse_accelerator,
    parse_value,
    point_to_job,
)

__all__ = [
    "ACQUISITIONS",
    "Axis",
    "CONFIG_PARAMETERS",
    "Constraint",
    "CoordinateDescentSearch",
    "DRAM_CHANNELS",
    "DesignPoint",
    "EvaluatedPoint",
    "ExplorationResult",
    "Featurizer",
    "GeneratorStrategy",
    "GradientBoostedSurrogate",
    "GridSearch",
    "KernelRidgeSurrogate",
    "NETWORK_PARAMETERS",
    "OBJECTIVES",
    "Objective",
    "PointEvaluator",
    "RandomSearch",
    "STRATEGIES",
    "SURROGATES",
    "SearchState",
    "SearchStrategy",
    "SklearnGPSurrogate",
    "SurrogateModel",
    "SurrogateSearch",
    "SweepSpec",
    "am_fits_working_set",
    "canonical_point",
    "dominance_ranks",
    "dominates",
    "drive_search",
    "encode_parameter",
    "expected_improvement",
    "explore",
    "frontier_table",
    "job_to_point",
    "named_constraint",
    "pareto_frontier",
    "parse_accelerator",
    "parse_strategy_options",
    "parse_value",
    "point_to_job",
    "register_strategy",
    "register_surrogate",
    "resolve_objectives",
    "resolve_strategy",
    "resolve_surrogate",
    "scalar_score",
    "strategy_from_request",
    "sweep_markdown",
    "sweep_table",
    "sweep_to_csv",
    "upper_confidence_bound",
]
