"""Multi-objective analysis: objectives, Pareto dominance and frontier ranking.

An :class:`Objective` names one metric of an evaluated design point together
with its direction (maximise speedup, minimise area).  Dominance follows the
standard multi-objective definition: point ``a`` dominates ``b`` when it is at
least as good on every objective and strictly better on at least one.  The
Pareto frontier is the non-dominated set; :func:`dominance_ranks` peels
successive frontiers so every point gets a rank (0 = on the frontier, 1 = on
the frontier once rank-0 points are removed, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

__all__ = [
    "Objective",
    "OBJECTIVES",
    "resolve_objectives",
    "dominates",
    "pareto_frontier",
    "dominance_ranks",
    "scalar_score",
]


@dataclass(frozen=True)
class Objective:
    """One optimisation objective over an evaluated point's metrics.

    ``key`` names the entry of the point's metrics mapping; ``maximize``
    gives the direction.  ``name`` is how sweeps and CLI flags refer to it.
    """

    name: str
    key: str
    maximize: bool = True

    @property
    def direction(self) -> str:
        return "max" if self.maximize else "min"

    def value(self, metrics) -> float:
        return float(metrics[self.key])


#: The objectives `loom-repro explore` understands out of the box.
OBJECTIVES: Dict[str, Objective] = {
    objective.name: objective
    for objective in (
        Objective("speedup", "speedup", maximize=True),
        Objective("energy_efficiency", "energy_efficiency", maximize=True),
        Objective("area", "area_mm2", maximize=False),
        Objective("area_ratio", "area_ratio", maximize=False),
        Objective("fps", "fps", maximize=True),
        Objective("cycles", "cycles", maximize=False),
        Objective("energy", "energy_pj", maximize=False),
    )
}


def resolve_objectives(
    objectives: Union[str, Sequence[Union[str, Objective]]]
) -> Tuple[Objective, ...]:
    """Coerce a comma-separated string or a mixed sequence into objectives."""
    if isinstance(objectives, str):
        objectives = [token.strip() for token in objectives.split(",")
                      if token.strip()]
    resolved = []
    for objective in objectives:
        if isinstance(objective, Objective):
            resolved.append(objective)
            continue
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; known: {sorted(OBJECTIVES)}"
            )
        resolved.append(OBJECTIVES[objective])
    if not resolved:
        raise ValueError("at least one objective is required")
    if len({o.name for o in resolved}) != len(resolved):
        raise ValueError("duplicate objectives")
    return tuple(resolved)


def _oriented(objective: Objective, metrics) -> float:
    """Objective value with direction folded in (always maximise)."""
    value = objective.value(metrics)
    return value if objective.maximize else -value


def dominates(metrics_a, metrics_b,
              objectives: Sequence[Objective]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` over ``objectives``."""
    strictly_better = False
    for objective in objectives:
        a = _oriented(objective, metrics_a)
        b = _oriented(objective, metrics_b)
        if a < b:
            return False
        if a > b:
            strictly_better = True
    return strictly_better


def pareto_frontier(points: Iterable, objectives: Sequence[Objective],
                    metrics=lambda point: point.metrics) -> List:
    """The non-dominated subset of ``points``, preserving input order."""
    points = list(points)
    ranks = dominance_ranks(points, objectives, metrics=metrics)
    return [point for point, rank in zip(points, ranks) if rank == 0]


def dominance_ranks(points: Sequence, objectives: Sequence[Objective],
                    metrics=lambda point: point.metrics) -> List[int]:
    """Rank every point by iterated frontier peeling (0 = Pareto-optimal)."""
    values = [metrics(point) for point in points]
    ranks = [-1] * len(points)
    remaining = list(range(len(points)))
    rank = 0
    while remaining:
        frontier = [
            i for i in remaining
            if not any(dominates(values[j], values[i], objectives)
                       for j in remaining if j != i)
        ]
        if not frontier:  # pragma: no cover - only on inconsistent metrics
            frontier = list(remaining)
        for i in frontier:
            ranks[i] = rank
        remaining = [i for i in remaining if i not in set(frontier)]
        rank += 1
    return ranks


def scalar_score(metrics, objectives: Sequence[Objective]) -> float:
    """Fold multiple objectives into one figure of merit.

    The score is the product of the maximised metrics divided by the
    minimised ones (e.g. ``speedup * efficiency / area``) -- a scale-free
    composite that adaptive strategies can hill-climb on.  Non-finite or
    non-positive metric values yield ``-inf`` so such points never win.
    """
    score = 1.0
    for objective in objectives:
        value = objective.value(metrics)
        if not math.isfinite(value) or value <= 0.0:
            return float("-inf")
        score = score * value if objective.maximize else score / value
    return score
