"""Declarative design-space sweep specifications.

A :class:`SweepSpec` names the axes of a design-space sweep -- network,
precision profile, accelerator design and every :class:`~repro.accelerators.
base.AcceleratorConfig` knob (equivalent MACs, memory capacities, the DRAM
channel, the technology) -- plus fixed ``base`` values for everything that is
not swept and :class:`Constraint` predicates that prune infeasible points
(e.g. "the activation memory must hold the working set").

Expanding a spec is pure data flow: the Cartesian product of the axes (in
declaration order) is filtered through the constraints into an ordered list of
:class:`DesignPoint`\\ s, and each point maps to exactly one declarative
:class:`~repro.sim.jobs.spec.SimJob`.  Because jobs are content-keyed, a spec
also knows its *unique* job list: two points that the cache cannot tell apart
(e.g. a bit-parallel baseline swept over precision profiles it ignores)
collapse to one simulation.

Specs round-trip through plain dicts (:meth:`SweepSpec.to_dict` /
:meth:`SweepSpec.from_dict`), which is what the ``loom-repro explore --grid``
JSON file format is.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import json
from dataclasses import dataclass
from typing import (
    Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union,
)

from repro.accelerators.base import AcceleratorConfig
from repro.memory.dram import DRAMChannel, LPDDR4_4267
from repro.sim.jobs import (
    AcceleratorSpec,
    NetworkSpec,
    SimJob,
    build_accelerator,
    build_spec_network,
    job_key,
)

__all__ = [
    "Axis",
    "Constraint",
    "DesignPoint",
    "SweepSpec",
    "DRAM_CHANNELS",
    "NETWORK_PARAMETERS",
    "CONFIG_PARAMETERS",
    "am_fits_working_set",
    "canonical_point",
    "encode_parameter",
    "format_parameter",
    "job_to_point",
    "named_constraint",
    "parse_accelerator",
    "parse_value",
    "point_to_job",
]

#: Named DRAM channels a sweep can reference by string (JSON grids, CLI axes).
DRAM_CHANNELS: Dict[str, Optional[DRAMChannel]] = {
    "lpddr4-4267": LPDDR4_4267,
    "none": None,
}

#: Parameters that select the network / precision profile of a point.
#: ``groups`` / ``heads`` are structural zoo-builder overrides (ResNeXt-style
#: group count for resnet18, attention head count for tiny_transformer).
NETWORK_PARAMETERS = ("network", "accuracy", "with_effective_weights",
                      "groups", "heads")

#: Parameters forwarded to :class:`AcceleratorConfig` (every config knob).
CONFIG_PARAMETERS = tuple(
    f.name for f in dataclasses.fields(AcceleratorConfig)
)

_KNOWN_PARAMETERS = NETWORK_PARAMETERS + ("accelerator",) + CONFIG_PARAMETERS


@dataclass(frozen=True)
class Axis:
    """One named, ordered parameter axis of a sweep."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if self.name not in _KNOWN_PARAMETERS:
            raise ValueError(
                f"unknown sweep parameter {self.name!r}; known parameters: "
                f"{sorted(_KNOWN_PARAMETERS)}"
            )
        values = tuple(_canonical_parameter(self.name, v) for v in self.values)
        if not values:
            raise ValueError(f"axis {self.name!r} has no values")
        if len(set(values)) != len(values):
            raise ValueError(f"axis {self.name!r} has duplicate values")
        object.__setattr__(self, "values", values)

    @property
    def numeric(self) -> bool:
        """Whether every value is a real number (bools excluded).

        Numeric axes have a meaningful order and distance, so surrogate
        featurizers scale them onto one column instead of one-hot encoding
        the individual values.
        """
        return all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in self.values
        )


@dataclass(frozen=True)
class Constraint:
    """A named feasibility predicate over a :class:`DesignPoint`."""

    name: str
    predicate: Callable[["DesignPoint"], bool]

    def __call__(self, point: "DesignPoint") -> bool:
        return bool(self.predicate(point))


class DesignPoint(Mapping):
    """One fully-resolved point of a sweep: parameter name -> value.

    Immutable and hashable (axis values are themselves hashable), so points
    can key evaluation memos directly.  Iteration order is the spec's
    parameter order: swept axes first, then base parameters.
    """

    __slots__ = ("_items", "_index")

    def __init__(self, items: Iterable[Tuple[str, object]]) -> None:
        self._items = tuple(items)
        self._index = dict(self._items)
        if len(self._index) != len(self._items):
            raise ValueError("duplicate parameter in design point")

    def __getitem__(self, name: str) -> object:
        return self._index[name]

    def __iter__(self):
        return iter(name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DesignPoint):
            return self._items == other._items
        return NotImplemented

    def __repr__(self) -> str:
        return f"DesignPoint({self.label()})"

    def label(self, names: Optional[Sequence[str]] = None) -> str:
        """Compact ``name=value`` label (for tables and progress lines)."""
        names = list(names) if names is not None else [n for n, _ in self._items]
        return " ".join(
            f"{name}={format_parameter(name, self[name])}" for name in names
        )


def _canonical_parameter(name: str, value: object) -> object:
    """Normalise one parameter value into its canonical in-memory form."""
    if name == "accelerator":
        return parse_accelerator(value)
    if name == "dram":
        if isinstance(value, str):
            key = value.lower()
            if key not in DRAM_CHANNELS:
                raise ValueError(
                    f"unknown DRAM channel {value!r}; "
                    f"known: {sorted(DRAM_CHANNELS)}"
                )
            return DRAM_CHANNELS[key]
        if value is not None and not isinstance(value, DRAMChannel):
            raise TypeError(f"dram must be a DRAMChannel, name or None, "
                            f"got {value!r}")
        return value
    return value


def parse_accelerator(value: object) -> AcceleratorSpec:
    """Coerce any supported accelerator description into an :class:`AcceleratorSpec`.

    Accepted forms: an ``AcceleratorSpec``; a kind string with optional
    colon-separated options (``"loom:bits_per_cycle=2:window_fanout=4"``);
    a ``(kind, options)`` pair; or a ``{"kind": ..., **options}`` mapping
    (the JSON grid-file form).
    """
    if isinstance(value, AcceleratorSpec):
        return value
    if isinstance(value, str):
        kind, _, rest = value.partition(":")
        options = {}
        for token in filter(None, rest.split(":")):
            key, sep, raw = token.partition("=")
            if not sep:
                raise ValueError(
                    f"bad accelerator option {token!r} in {value!r}; "
                    f"expected key=value"
                )
            options[key] = parse_value(raw)
        return AcceleratorSpec.create(kind, **options)
    if isinstance(value, Mapping):
        options = dict(value)
        kind = options.pop("kind", None)
        if kind is None:
            raise ValueError(f"accelerator mapping {value!r} needs a 'kind'")
        return AcceleratorSpec.create(kind, **options)
    if isinstance(value, Sequence) and len(value) == 2:
        kind, options = value
        return AcceleratorSpec.create(kind, **dict(options))
    raise TypeError(f"cannot interpret {value!r} as an accelerator design")


def parse_value(token: str) -> object:
    """Parse one CLI/JSON scalar token: int, float, bool, none or string."""
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for converter in (int, float):
        try:
            return converter(token)
        except ValueError:
            continue
    return token


def format_parameter(name: str, value: object) -> str:
    """Render one parameter value the way grids and tables spell it."""
    if name == "accelerator":
        from repro.experiments.common import design_label
        return design_label(parse_accelerator(value))
    if isinstance(value, DRAMChannel):
        return value.name.lower()
    if value is None:
        return "none"
    return str(value)


@functools.lru_cache(maxsize=None)
def _overrides_buildable(network: str, groups, heads) -> bool:
    """Whether the zoo builder accepts this (network, overrides) combination."""
    from repro.nn import build_network

    try:
        build_network(network, groups=groups, heads=heads)
    except ValueError:
        return False
    except KeyError:
        # Unknown network: let job construction raise its clearer error.
        return True
    return True


def _structural_overrides_feasible(point: Mapping) -> bool:
    """Whether the point's ``groups``/``heads`` overrides apply to its network.

    A sweep may cross the ``network`` axis with a structural-override axis
    (or base value); combinations the zoo builder rejects -- an unsupported
    override like ``groups`` on AlexNet, or an invalid value like a group
    count that does not divide the block width -- are infeasible points to
    skip, exactly like constraint-violating ones, not errors that abort the
    whole sweep.  ``None``-valued overrides mean "builder default" and are
    always feasible.
    """
    groups, heads = point.get("groups"), point.get("heads")
    network = point.get("network")
    if (groups is None and heads is None) or network is None:
        return True
    return _overrides_buildable(str(network), groups, heads)


# -- built-in constraints ------------------------------------------------------


def _point_am_holds_working_set(point: DesignPoint) -> bool:
    """True when the point's activation memory holds the largest layer.

    The footprint is the network's worst single-layer input + output
    activation count at 16 bits per value (the bit-parallel storage bound;
    precision-scaled designs only do better), compared against the activation
    memory the point's accelerator actually instantiates -- including the
    design's default sizing when ``am_capacity_bytes`` is not swept.
    """
    job = point_to_job(point)
    network = build_spec_network(job.network)
    working_set_bits = network.max_layer_activations() * 16
    accelerator = build_accelerator(job.accelerator, job.config)
    return accelerator.hierarchy.activation_memory.capacity_bits >= working_set_bits


def am_fits_working_set() -> Constraint:
    """Constraint: the activation memory must hold the largest layer's footprint."""
    return Constraint("am_fits_working_set", _point_am_holds_working_set)


#: Constraints a JSON grid file can name by string.
_NAMED_CONSTRAINTS: Dict[str, Callable[[], Constraint]] = {
    "am_fits_working_set": am_fits_working_set,
}


def named_constraint(name: str) -> Constraint:
    """Look up one of the built-in constraints by name."""
    if name not in _NAMED_CONSTRAINTS:
        raise ValueError(
            f"unknown constraint {name!r}; known: {sorted(_NAMED_CONSTRAINTS)}"
        )
    return _NAMED_CONSTRAINTS[name]()


# -- point -> job --------------------------------------------------------------


def canonical_point(values: Mapping[str, object]) -> DesignPoint:
    """Canonicalise a raw parameter mapping into a :class:`DesignPoint`.

    This is the entry point for externally supplied points (JSON request
    bodies, config files): parameter names are validated against the known
    sweep parameters and values are normalised exactly the way axis/base
    values are -- accelerator strings/mappings become
    :class:`~repro.sim.jobs.AcceleratorSpec`\\ s, DRAM channel names become
    channel objects -- so ``point_to_job(canonical_point(data))`` accepts
    everything a sweep axis would.
    """
    unknown = set(values) - set(_KNOWN_PARAMETERS)
    if unknown:
        raise ValueError(
            f"unknown point parameter(s) {sorted(unknown)}; known parameters: "
            f"{sorted(_KNOWN_PARAMETERS)}"
        )
    return DesignPoint(
        tuple((name, _canonical_parameter(name, value))
              for name, value in values.items())
    )


def encode_parameter(name: str, value: object) -> object:
    """JSON-encode one canonical parameter value (inverse of canonicalising).

    Accelerator specs become ``{"kind": ..., **options}`` mappings, DRAM
    channels their registry names; everything else passes through.  This is
    the one shared wire encoding used by :meth:`SweepSpec.to_dict`, the
    service protocol and :func:`job_to_point`.
    """
    if name == "accelerator":
        spec = parse_accelerator(value)
        return {"kind": spec.kind, **_jsonable_options(spec.options_dict())}
    if isinstance(value, DRAMChannel):
        for channel_name, channel in DRAM_CHANNELS.items():
            if channel == value:
                return channel_name
        raise ValueError(
            f"DRAM channel {value.name!r} has no registry name; only "
            f"{sorted(n for n in DRAM_CHANNELS if DRAM_CHANNELS[n])} can be "
            f"encoded for remote execution"
        )
    return value


def _jsonable_options(options: Mapping[str, object]) -> Dict[str, object]:
    """Canonical accelerator options (nested tuples) as JSON-friendly lists."""
    def convert(value):
        if isinstance(value, tuple):
            return [convert(v) for v in value]
        return value

    return {name: convert(value) for name, value in options.items()}


def job_to_point(job: SimJob) -> Dict[str, object]:
    """Encode a :class:`SimJob` as a JSON-able point mapping (wire format).

    The inverse of ``point_to_job(canonical_point(...))``: round-tripping a
    job through ``job_to_point`` and back preserves its content key, which
    is what lets :class:`repro.serve.RemoteExecutor` ship jobs to a
    ``loom-repro serve`` process.  Only defaulted or registry-known nested
    values can cross the wire: a custom ``tech`` parameter set or an
    unregistered DRAM channel raises ``ValueError``.
    """
    point: Dict[str, object] = {"network": job.network.name}
    if job.network.accuracy != "100%":
        point["accuracy"] = job.network.accuracy
    if job.network.with_effective_weights:
        point["with_effective_weights"] = True
    for override in ("groups", "heads"):
        value = getattr(job.network, override)
        if value is not None:
            point[override] = value
    point["accelerator"] = encode_parameter("accelerator", job.accelerator)
    defaults = AcceleratorConfig()
    for field in dataclasses.fields(AcceleratorConfig):
        value = getattr(job.config, field.name)
        if value == getattr(defaults, field.name):
            continue
        if field.name == "tech":
            raise ValueError(
                "jobs with a non-default technology parameter set cannot be "
                "encoded for remote execution"
            )
        point[field.name] = encode_parameter(field.name, value)
    return point


def point_to_job(point: Mapping) -> SimJob:
    """Translate one design point into its declarative :class:`SimJob`."""
    if "network" not in point:
        raise ValueError("design point needs a 'network' parameter "
                         "(axis or base value)")
    if "accelerator" not in point:
        raise ValueError("design point needs an 'accelerator' parameter "
                         "(axis or base value)")
    network = NetworkSpec(
        name=point["network"],
        accuracy=point.get("accuracy", "100%"),
        with_effective_weights=bool(point.get("with_effective_weights", False)),
        groups=point.get("groups"),
        heads=point.get("heads"),
    )
    accelerator = parse_accelerator(point["accelerator"])
    config_kwargs = {name: point[name] for name in CONFIG_PARAMETERS
                     if name in point}
    return SimJob(network=network, accelerator=accelerator,
                  config=AcceleratorConfig(**config_kwargs))


class SweepSpec:
    """A declarative design-space sweep: axes x base values x constraints.

    Parameters
    ----------
    axes:
        Ordered :class:`Axis` list (or a ``name -> values`` mapping).  The
        Cartesian product is taken in declaration order, with the *last* axis
        varying fastest -- the order :func:`itertools.product` uses.
    base:
        Fixed values for parameters that are not swept (``network`` must
        appear as an axis or here; ``accelerator`` likewise).
    constraints:
        :class:`Constraint` predicates; points any predicate rejects are
        dropped from the expansion.
    """

    def __init__(
        self,
        axes: Union[Sequence[Axis], Mapping[str, Sequence[object]]],
        base: Optional[Mapping[str, object]] = None,
        constraints: Sequence[Union[Constraint, str]] = (),
    ) -> None:
        if isinstance(axes, Mapping):
            axes = [Axis(name, tuple(values)) for name, values in axes.items()]
        self.axes: Tuple[Axis, ...] = tuple(axes)
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names: {names}")
        base = dict(base or {})
        for name in base:
            if name not in _KNOWN_PARAMETERS:
                raise ValueError(
                    f"unknown base parameter {name!r}; known parameters: "
                    f"{sorted(_KNOWN_PARAMETERS)}"
                )
            if name in names:
                raise ValueError(f"parameter {name!r} is both an axis and a "
                                 f"base value")
        self.base: Dict[str, object] = {
            name: _canonical_parameter(name, value)
            for name, value in base.items()
        }
        self.constraints: Tuple[Constraint, ...] = tuple(
            named_constraint(c) if isinstance(c, str) else c
            for c in constraints
        )
        self._points: Optional[List[DesignPoint]] = None

    # -- introspection ---------------------------------------------------------

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    @property
    def size(self) -> int:
        """Number of points before constraint filtering."""
        product = 1
        for axis in self.axes:
            product *= len(axis.values)
        return product

    def feature_axes(self) -> Tuple[Axis, ...]:
        """The informative axes for surrogate featurization.

        Only axes with at least two values can distinguish points;
        single-value axes and base parameters are constant across the sweep
        and carry no information, so featurizers skip them.
        """
        return tuple(axis for axis in self.axes if len(axis.values) >= 2)

    def describe(self) -> str:
        parts = [f"{axis.name}[{len(axis.values)}]" for axis in self.axes]
        text = " x ".join(parts)
        if self.base:
            fixed = " ".join(
                f"{name}={format_parameter(name, value)}"
                for name, value in self.base.items()
            )
            text += f" ({fixed})"
        if self.constraints:
            text += " where " + ", ".join(c.name for c in self.constraints)
        return text

    # -- expansion -------------------------------------------------------------

    def points(self) -> List[DesignPoint]:
        """All feasible points, in deterministic product order.

        The expansion (including the constraint pass, which may build
        networks and accelerators) runs once per spec and is memoised;
        callers get a fresh list of the shared, immutable points.
        """
        if self._points is None:
            base_items = tuple(self.base.items())
            points = []
            for combination in itertools.product(
                    *(axis.values for axis in self.axes)):
                point = DesignPoint(
                    tuple(zip(self.axis_names, combination)) + base_items
                )
                if not _structural_overrides_feasible(point):
                    continue
                if all(constraint(point) for constraint in self.constraints):
                    points.append(point)
            self._points = points
        return list(self._points)

    def job(self, point: Mapping) -> SimJob:
        return point_to_job(point)

    def jobs(self, points: Optional[Sequence[DesignPoint]] = None
             ) -> List[SimJob]:
        """One job per point, aligned 1:1 with ``points`` (default: all)."""
        points = self.points() if points is None else points
        return [point_to_job(point) for point in points]

    def unique_jobs(self) -> List[SimJob]:
        """The deduplicated job list: one job per distinct content key.

        Points the simulator cannot tell apart (identical content keys, e.g.
        a profile-insensitive baseline swept across precision profiles)
        collapse to the first occurrence.
        """
        seen = set()
        unique = []
        for job in self.jobs():
            key = job_key(job)
            if key not in seen:
                seen.add(key)
                unique.append(job)
        return unique

    # -- (de)serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form of the spec (the ``--grid`` JSON file format)."""
        return {
            "axes": {
                axis.name: [encode_parameter(axis.name, v)
                            for v in axis.values]
                for axis in self.axes
            },
            "base": {
                name: encode_parameter(name, value)
                for name, value in self.base.items()
            },
            "constraints": [c.name for c in self.constraints],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        unknown = set(data) - {"axes", "base", "constraints"}
        if unknown:
            raise ValueError(f"unknown sweep spec keys: {sorted(unknown)}")
        axes = data.get("axes")
        if not axes:
            raise ValueError("sweep spec needs a non-empty 'axes' mapping")
        return cls(
            axes={name: tuple(values) for name, values in axes.items()},
            base=data.get("base") or {},
            constraints=tuple(data.get("constraints") or ()),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))
