"""Surrogate-guided exploration: learn the simulator, simulate the promising.

Large sweeps pay one true simulation per design point even though the result
stores hold thousands of ``(design point -> speedup/efficiency/area)``
answers.  This module closes that gap with the classic
train-once/answer-many amortisation: a :class:`Featurizer` encodes
:class:`~repro.explore.space.DesignPoint`\\ s into NumPy matrices (one-hot
categorical axes, scaled numeric knobs), a :class:`SurrogateModel` learns the
scalarised objective from every observed and store-warm result, and
:class:`SurrogateSearch` runs a Bayesian-optimisation loop on top: seed with
a few random true simulations, fit the surrogate, score the *entire*
remaining grid with an Expected-Improvement or UCB acquisition (the cheap
amortised query), and submit only the top candidates to the real simulator
each round.  Points the search does validate go through the ordinary
evaluator, so their metrics are bit-identical to what exhaustive grid search
would report; unpromising points are simply never simulated.

Backends: :class:`KernelRidgeSurrogate` is the dependency-free default
(kernel-ridge/RBF regression with GP-style predictive uncertainty, pure
NumPy); :class:`SklearnGPSurrogate` and :class:`GradientBoostedSurrogate`
use scikit-learn when it is installed and raise a clear ``ImportError``
pointing back at ``"ridge"`` when it is not.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

try:  # pragma: no cover - Protocol fallback for very old typing stacks
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object

from repro.explore.frontier import scalar_score
from repro.explore.search import GeneratorStrategy, register_strategy
from repro.explore.space import DesignPoint, SweepSpec, format_parameter

__all__ = [
    "Featurizer",
    "SurrogateModel",
    "KernelRidgeSurrogate",
    "SklearnGPSurrogate",
    "GradientBoostedSurrogate",
    "SURROGATES",
    "register_surrogate",
    "resolve_surrogate",
    "expected_improvement",
    "upper_confidence_bound",
    "ACQUISITIONS",
    "SurrogateSearch",
]


# -- featurization -------------------------------------------------------------


class Featurizer:
    """Encode the design points of one sweep into a dense feature matrix.

    Each informative axis (:meth:`~repro.explore.space.SweepSpec.
    feature_axes`: two or more values) contributes columns:

    * numeric axes (:attr:`~repro.explore.space.Axis.numeric`) map to one
      column, min-max scaled onto ``[0, 1]``; axes spanning a factor of 8 or
      more (equivalent MACs, memory capacities) are log2-scaled first, so a
      doubling is the same step everywhere on the axis;
    * every other axis is one-hot encoded over its declared values
      (accelerator designs, networks, DRAM channels, booleans).

    Constant axes and base parameters carry no information and are skipped.
    The encoding depends only on the spec, never on which points have been
    observed, so feature vectors are stable across rounds and runs.
    """

    #: Numeric axes whose max/min ratio reaches this are log2-scaled.
    LOG_SCALE_RATIO = 8.0

    def __init__(self, space: SweepSpec) -> None:
        self.space = space
        self._columns: List[Tuple[str, str, object]] = []
        names: List[str] = []
        for axis in space.feature_axes():
            if axis.numeric:
                values = [float(value) for value in axis.values]
                log = (min(values) > 0.0
                       and max(values) / min(values) >= self.LOG_SCALE_RATIO)
                if log:
                    values = [math.log2(value) for value in values]
                lo, hi = min(values), max(values)
                self._columns.append((axis.name, "numeric", (log, lo, hi)))
                names.append(axis.name)
            else:
                index = {value: i for i, value in enumerate(axis.values)}
                self._columns.append((axis.name, "onehot", index))
                names.extend(
                    f"{axis.name}={format_parameter(axis.name, value)}"
                    for value in axis.values
                )
        self.feature_names: Tuple[str, ...] = tuple(names)

    @property
    def width(self) -> int:
        """Number of feature columns."""
        return len(self.feature_names)

    def transform(self, points: Sequence[DesignPoint]) -> np.ndarray:
        """Encode ``points`` as a ``(len(points), width)`` float matrix."""
        matrix = np.zeros((len(points), self.width), dtype=float)
        offset = 0
        for name, kind, payload in self._columns:
            if kind == "numeric":
                log, lo, hi = payload
                raw = np.array([float(point[name]) for point in points])
                if log:
                    raw = np.log2(raw)
                matrix[:, offset] = (raw - lo) / (hi - lo)
                offset += 1
            else:
                index = payload
                for row, point in enumerate(points):
                    value = point[name]
                    if value not in index:
                        raise ValueError(
                            f"point value {value!r} for parameter {name!r} is "
                            f"not on the sweep's axis; featurization only "
                            f"covers declared axis values"
                        )
                    matrix[row, offset + index[value]] = 1.0
                offset += len(index)
        return matrix


# -- surrogate models ----------------------------------------------------------


class SurrogateModel(Protocol):
    """What :class:`SurrogateSearch` needs from a regression backend."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Train on features ``X`` (n x d) and targets ``y`` (n)."""

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Predict ``(mean, std)`` for each row of ``X``."""


#: Registry of surrogate backends by name (see register_surrogate).
SURROGATES: Dict[str, type] = {}


def register_surrogate(name: str):
    """Class decorator: register a :class:`SurrogateModel` under ``name``."""
    def decorate(cls: type) -> type:
        existing = SURROGATES.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"surrogate name {name!r} is already registered to "
                f"{existing.__name__}"
            )
        SURROGATES[name] = cls
        return cls
    return decorate


def resolve_surrogate(model: Union[str, SurrogateModel, None],
                      **options) -> SurrogateModel:
    """Coerce a backend name (plus options) or an instance into a model."""
    if model is None:
        model = "ridge"
    if not isinstance(model, str):
        if options:
            raise ValueError("options only apply when naming a surrogate")
        return model
    if model not in SURROGATES:
        raise ValueError(
            f"unknown surrogate model {model!r}; known: {sorted(SURROGATES)}"
        )
    return SURROGATES[model](**options)


@register_surrogate("ridge")
class KernelRidgeSurrogate:
    """Dependency-free kernel-ridge / RBF regressor with GP-style uncertainty.

    Pure NumPy: the posterior mean is standard kernel ridge regression with a
    unit-variance RBF kernel (length scale from the median pairwise-distance
    heuristic unless given), and the predictive standard deviation is the
    matching Gaussian-process posterior ``sqrt(k(x,x) - k_x^T (K + noise
    I)^-1 k_x)``, rescaled by the training targets' spread.  Training cost is
    one Cholesky factorisation of the observed set -- tiny next to a single
    true simulation, which is the whole amortisation argument.
    """

    def __init__(self, length_scale: Optional[float] = None,
                 noise: float = 1e-6) -> None:
        if length_scale is not None and length_scale <= 0.0:
            raise ValueError(f"length_scale must be > 0, got {length_scale}")
        if noise <= 0.0:
            raise ValueError(f"noise must be > 0, got {noise}")
        self.length_scale = length_scale
        self.noise = float(noise)
        self._X: Optional[np.ndarray] = None

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        distances = ((A[:, None, :] - B[None, :, :]) ** 2).sum(axis=2)
        return np.exp(-0.5 * distances / (self._scale * self._scale))

    def fit(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self._y_mean = float(y.mean())
        spread = float(y.std())
        self._y_scale = spread if spread > 0.0 else 1.0
        targets = (y - self._y_mean) / self._y_scale
        if self.length_scale is not None:
            self._scale = float(self.length_scale)
        else:
            distances = np.sqrt(
                ((X[:, None, :] - X[None, :, :]) ** 2).sum(axis=2))
            positive = distances[distances > 0.0]
            self._scale = float(np.median(positive)) if positive.size else 1.0
        K = self._kernel(X, X)
        jitter = self.noise
        for _ in range(8):
            try:
                L = np.linalg.cholesky(K + jitter * np.eye(len(X)))
                break
            except np.linalg.LinAlgError:
                jitter *= 10.0
        else:  # pragma: no cover - unit-diagonal RBF always factors eventually
            raise np.linalg.LinAlgError("kernel matrix is not positive "
                                        "definite even with jitter")
        self._L = L
        z = np.linalg.solve(L, targets)
        self._alpha = np.linalg.solve(L.T, z)
        self._X = X

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self._X is None:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=float)
        Kq = self._kernel(X, self._X)
        mean = Kq @ self._alpha * self._y_scale + self._y_mean
        V = np.linalg.solve(self._L, Kq.T)
        variance = np.clip(1.0 - (V * V).sum(axis=0), 0.0, None)
        std = np.sqrt(variance) * self._y_scale
        return mean, std


_SKLEARN_HINT = ("install scikit-learn or use the dependency-free 'ridge' "
                 "backend")


@register_surrogate("gp")
class SklearnGPSurrogate:
    """scikit-learn Gaussian-process backend (optional dependency).

    An RBF kernel with a learned constant scale and a white-noise term,
    ``normalize_y`` so metric magnitudes do not matter, and a fixed
    ``random_state`` so proposals stay deterministic.
    """

    def __init__(self, restarts: int = 2) -> None:
        try:
            from sklearn.gaussian_process import GaussianProcessRegressor
            from sklearn.gaussian_process.kernels import (
                RBF, ConstantKernel, WhiteKernel)
        except ImportError as error:
            raise ImportError(
                f"surrogate model 'gp' needs scikit-learn; {_SKLEARN_HINT}"
            ) from error
        kernel = (ConstantKernel(1.0) * RBF(length_scale=1.0)
                  + WhiteKernel(noise_level=1e-6,
                                noise_level_bounds=(1e-12, 1e-1)))
        self._gp = GaussianProcessRegressor(
            kernel=kernel,
            normalize_y=True,
            n_restarts_optimizer=restarts,
            random_state=0,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._gp.fit(np.asarray(X, dtype=float), np.asarray(y, dtype=float))

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        mean, std = self._gp.predict(np.asarray(X, dtype=float),
                                     return_std=True)
        return np.asarray(mean, dtype=float), np.asarray(std, dtype=float)


@register_surrogate("gbt")
class GradientBoostedSurrogate:
    """Gradient-boosted-tree backend (optional scikit-learn dependency).

    The mean comes from a squared-error ensemble; the uncertainty band from
    two quantile ensembles (16%/84%, one predictive sigma apart under a
    normal assumption), floored at a small fraction of the target spread so
    acquisition functions never divide by zero.
    """

    def __init__(self, estimators: int = 200, max_depth: int = 3) -> None:
        if estimators < 1:
            raise ValueError(f"estimators must be >= 1, got {estimators}")
        try:
            from sklearn.ensemble import GradientBoostingRegressor
        except ImportError as error:
            raise ImportError(
                f"surrogate model 'gbt' needs scikit-learn; {_SKLEARN_HINT}"
            ) from error

        def make(**kwargs):
            return GradientBoostingRegressor(
                n_estimators=estimators, max_depth=max_depth,
                random_state=0, **kwargs)

        self._mean = make()
        self._lo = make(loss="quantile", alpha=0.16)
        self._hi = make(loss="quantile", alpha=0.84)

    def fit(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        spread = float(y.std())
        self._floor = max(spread, 1.0) * 1e-3
        for model in (self._mean, self._lo, self._hi):
            model.fit(X, y)

    def predict(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=float)
        mean = self._mean.predict(X)
        half_band = (self._hi.predict(X) - self._lo.predict(X)) / 2.0
        std = np.clip(half_band, self._floor, None)
        return mean, std


# -- acquisition functions -----------------------------------------------------


_erf = np.vectorize(math.erf)


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                         xi: float = 0.01) -> np.ndarray:
    """Expected improvement over ``best`` (maximisation form).

    ``xi`` trades exploration for exploitation: larger values demand more
    predicted improvement before a certain candidate beats an uncertain one.
    Zero-uncertainty candidates fall back to their plain improvement.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    improvement = mean - best - xi
    safe_std = np.where(std > 0.0, std, 1.0)
    z = improvement / safe_std
    cdf = 0.5 * (1.0 + _erf(z / math.sqrt(2.0)))
    pdf = np.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
    ei = improvement * cdf + std * pdf
    return np.where(std > 0.0, ei, np.maximum(improvement, 0.0))


def upper_confidence_bound(mean: np.ndarray, std: np.ndarray, best: float,
                           kappa: float = 1.6) -> np.ndarray:
    """UCB acquisition: optimism in the face of uncertainty (ignores best)."""
    return np.asarray(mean, dtype=float) + kappa * np.asarray(std, dtype=float)


#: Acquisition functions by --strategy-opt name.
ACQUISITIONS = {
    "ei": expected_improvement,
    "ucb": upper_confidence_bound,
}


# -- the strategy --------------------------------------------------------------


@register_strategy("surrogate")
class SurrogateSearch(GeneratorStrategy):
    """Bayesian-optimisation search: simulate only what the surrogate likes.

    The loop: collect every store-warm point for free, seed with ``initial``
    random true simulations, then each round fit the surrogate on everything
    observed so far (targets are the scalarised objective,
    :func:`~repro.explore.frontier.scalar_score`), score all still-unobserved
    grid points with the acquisition function and submit the top ``batch`` to
    the real simulator.  Observed points are never proposed again, ties break
    on grid order, and all randomness flows from ``seed``, so the proposal
    sequence is reproducible.  The driver's ``budget`` is respected both ways:
    batches shrink to the remaining budget, and the search stops when it runs
    out.

    Options (all reachable via ``--strategy-opt key=value``):

    * ``seed`` -- RNG seed for the initial design (default 0);
    * ``initial`` -- random true simulations to seed with (default 8);
    * ``batch`` -- candidates submitted per round (default 4);
    * ``rounds`` -- surrogate-guided rounds after seeding (default 8);
    * ``model`` -- backend name (``"ridge"``, ``"gp"``, ``"gbt"``) or a
      :class:`SurrogateModel` instance (default ``"ridge"``);
    * ``acquisition`` -- ``"ei"`` or ``"ucb"``;
    * ``kappa`` / ``xi`` -- UCB optimism / EI exploration margin.
    """

    def __init__(self, seed: int = 0, initial: int = 8, batch: int = 4,
                 rounds: int = 8, model: Union[str, SurrogateModel] = "ridge",
                 acquisition: str = "ei", kappa: float = 1.6,
                 xi: float = 0.01) -> None:
        if initial < 2:
            raise ValueError(f"initial must be >= 2, got {initial}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if rounds < 0:
            raise ValueError(f"rounds must be >= 0, got {rounds}")
        if acquisition not in ACQUISITIONS:
            raise ValueError(
                f"unknown acquisition {acquisition!r}; "
                f"known: {sorted(ACQUISITIONS)}"
            )
        if isinstance(model, str) and model not in SURROGATES:
            raise ValueError(
                f"unknown surrogate model {model!r}; "
                f"known: {sorted(SURROGATES)}"
            )
        self.seed = seed
        self.initial = initial
        self.batch = batch
        self.rounds_limit = rounds
        self.model = model
        self.acquisition = acquisition
        self.kappa = kappa
        self.xi = xi

    def _acquire(self, mean: np.ndarray, std: np.ndarray,
                 best: float) -> np.ndarray:
        if self.acquisition == "ucb":
            return upper_confidence_bound(mean, std, best, kappa=self.kappa)
        return expected_improvement(mean, std, best, xi=self.xi)

    def rounds(self, state):
        space = state.space
        points = space.points()
        if not points:
            return
        rng = random.Random(self.seed)
        featurizer = Featurizer(space)
        observed: Dict[DesignPoint, "object"] = {}

        def note(evaluated):
            for ep in evaluated:
                observed[ep.point] = ep

        def affordable(count: int) -> int:
            if state.remaining is None:
                return count
            return min(count, state.remaining)

        # Round 0: every store-warm result is free training data; top it up
        # with a seeded random initial design of true simulations.
        warm = state.warm(points)
        warm_set = set(warm)
        unknown = [point for point in points if point not in warm_set]
        seeds = list(warm)
        take = affordable(min(self.initial, len(unknown)))
        if take:
            seeds += rng.sample(unknown, take)
        if seeds:
            note((yield seeds))

        if featurizer.width == 0:
            # Degenerate sweep (no informative axes): nothing to learn from,
            # so validate whatever remains and stop.
            remaining = [p for p in points if p not in observed]
            if remaining:
                note((yield remaining))
            return

        for _ in range(self.rounds_limit):
            if state.remaining == 0:
                return
            candidates = [p for p in points if p not in observed]
            if not candidates:
                return
            train = [p for p in observed]
            if len(train) < 2:
                # Not enough observations to fit anything: sample at random.
                batch = rng.sample(candidates,
                                   affordable(min(self.batch,
                                                  len(candidates))))
                if not batch:
                    return
                note((yield batch))
                continue
            y = np.array(
                [scalar_score(observed[p].metrics, state.objectives)
                 for p in train], dtype=float)
            finite = np.isfinite(y)
            if finite.any():
                # Infeasible-metric points score -inf; pin them just below
                # the finite range so the fit stays well-conditioned while
                # the surrogate still learns to avoid the region.
                span = float(y[finite].max() - y[finite].min())
                floor = float(y[finite].min()) - max(span, 1.0)
                y = np.where(finite, y, floor)
                best = float(y.max())
            else:
                y = np.zeros_like(y)
                best = 0.0
            model = resolve_surrogate(self.model)
            model.fit(featurizer.transform(train), y)
            mean, std = model.predict(featurizer.transform(candidates))
            scores = self._acquire(np.asarray(mean, dtype=float),
                                   np.asarray(std, dtype=float), best)
            take = affordable(min(self.batch, len(candidates)))
            if not take:
                return
            order = np.argsort(-scores, kind="stable")[:take]
            evaluated = yield [candidates[i] for i in order]
            if not evaluated:
                return
            note(evaluated)
