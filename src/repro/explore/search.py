"""Search strategies: the ask/tell protocol plus grid, random and descent.

Strategies no longer evaluate points themselves.  Each one implements the
ask/tell protocol -- :meth:`SearchStrategy.propose` returns the next batch of
candidate :class:`~repro.explore.space.DesignPoint`\\ s and
:meth:`SearchStrategy.observe` receives the evaluated batch -- while the
single driver loop in :func:`repro.explore.engine.drive_search` owns
evaluation, the budget cap on true simulations, and trace recording.  Because
candidates go through one shared :class:`~repro.sim.jobs.JobExecutor` batch
per round, anything already simulated -- earlier in the search, by another
strategy, or in a previous invocation via the on-disk cache -- costs nothing
to revisit.  All randomness is seeded, so a strategy's trajectory (and thus
its reported point set) is reproducible.

Strategies register under their CLI/wire name with the
:func:`register_strategy` class decorator; :func:`resolve_strategy` turns a
name plus uniform ``key=value`` options (``--strategy-opt`` on the CLI,
``"options"`` on the wire) into an instance.

Legacy third-party strategies that still override :meth:`SearchStrategy.run`
keep working -- the driver falls back to them with a
:class:`DeprecationWarning` -- and the base-class ``run()`` itself is now a
thin shim over the driver.
"""

from __future__ import annotations

import random
import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from repro.explore.engine import (
    EvaluatedPoint,
    PointEvaluator,
    SearchState,
    drive_search,
)
from repro.explore.frontier import Objective, scalar_score
from repro.explore.space import DesignPoint, SweepSpec, parse_value

__all__ = [
    "SearchStrategy",
    "GeneratorStrategy",
    "GridSearch",
    "RandomSearch",
    "CoordinateDescentSearch",
    "STRATEGIES",
    "register_strategy",
    "resolve_strategy",
    "parse_strategy_options",
    "strategy_from_request",
]


class SearchStrategy:
    """Picks which points of a sweep to evaluate, possibly adaptively.

    The contract is ask/tell: the driver repeatedly calls :meth:`propose`
    for the next candidate batch, evaluates it (applying any budget), and
    hands the results back through :meth:`observe`.  Strategies never touch
    the evaluator -- which is what lets one driver own budgets, trace
    recording and per-round streaming for every strategy.
    """

    name: str = "strategy"

    def start(self, state: SearchState) -> None:
        """Hook: (re)initialise per-run state before the first ``propose``."""

    def propose(self, state: SearchState) -> List[DesignPoint]:
        """The next candidate batch to evaluate; ``[]`` ends the search."""
        raise NotImplementedError(
            f"{type(self).__name__} implements neither propose() nor the "
            "deprecated run()"
        )

    def observe(self, evaluated: Sequence[EvaluatedPoint]) -> None:
        """Receive the evaluated batch (proposal order; budget-trimmed)."""

    def run(self, space: SweepSpec, evaluator: PointEvaluator,
            objectives: Sequence[Objective]) -> List[EvaluatedPoint]:
        """Deprecated pre-ask/tell entry point; drives the new loop.

        Third-party strategies may still *override* this (the driver warns
        and falls back); calling it is equivalent to
        :func:`~repro.explore.engine.drive_search` without a budget.
        """
        warnings.warn(
            "SearchStrategy.run() is deprecated; use repro.explore.explore() "
            "or repro.explore.engine.drive_search(), which own evaluation, "
            "budgets and trace recording",
            DeprecationWarning, stacklevel=2,
        )
        return drive_search(self, space, evaluator, objectives)


class GeneratorStrategy(SearchStrategy):
    """Ask/tell adapter for multi-round strategies written as one generator.

    Subclasses implement :meth:`rounds`, a generator that yields each
    candidate batch and receives the evaluated batch back from the driver::

        def rounds(self, state):
            evaluated = yield [first, batch]
            ...
            evaluated = yield [next, batch]

    -- the natural shape for adaptive searches, without hand-managing a
    propose/observe state machine.  A batch may come back short (budget
    trimming) or empty (nothing in it was affordable); generators must
    tolerate both.
    """

    _generator = None
    _primed = False
    _observed: Optional[List[EvaluatedPoint]] = None

    def rounds(self, state: SearchState):
        """Generator of candidate batches; sent each evaluated batch."""
        raise NotImplementedError(f"{type(self).__name__} must implement "
                                  "rounds()")

    def start(self, state: SearchState) -> None:
        self._generator = self.rounds(state)
        self._primed = False
        self._observed = None

    def propose(self, state: SearchState) -> List[DesignPoint]:
        if self._generator is None:
            self.start(state)
        try:
            if self._primed:
                observed, self._observed = (self._observed or []), None
                return list(self._generator.send(observed))
            self._primed = True
            return list(next(self._generator))
        except StopIteration:
            self._generator = None
            return []

    def observe(self, evaluated: Sequence[EvaluatedPoint]) -> None:
        self._observed = list(evaluated)


#: Registry of strategy classes by CLI/wire name (see register_strategy).
STRATEGIES: Dict[str, Type[SearchStrategy]] = {}


def register_strategy(name: str):
    """Class decorator: register a :class:`SearchStrategy` under ``name``.

    The name becomes the class's ``name`` attribute and its key in
    :data:`STRATEGIES`, which is what ``--strategy`` on the CLI, the serve
    and cluster wire protocols and :func:`resolve_strategy` look up.
    """
    def decorate(cls: Type[SearchStrategy]) -> Type[SearchStrategy]:
        existing = STRATEGIES.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"strategy name {name!r} is already registered to "
                f"{existing.__name__}"
            )
        cls.name = name
        STRATEGIES[name] = cls
        return cls
    return decorate


@register_strategy("grid")
class GridSearch(SearchStrategy):
    """Exhaustive: propose every feasible point, one batch."""

    _proposed = False

    def start(self, state: SearchState) -> None:
        self._proposed = False

    def propose(self, state: SearchState) -> List[DesignPoint]:
        if self._proposed:
            return []
        self._proposed = True
        return state.space.points()


@register_strategy("random")
class RandomSearch(SearchStrategy):
    """Seeded uniform sampling without replacement."""

    _proposed = False

    def __init__(self, samples: int = 16, seed: int = 0) -> None:
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self.samples = samples
        self.seed = seed

    def start(self, state: SearchState) -> None:
        self._proposed = False

    def propose(self, state: SearchState) -> List[DesignPoint]:
        if self._proposed:
            return []
        self._proposed = True
        points = state.space.points()
        if len(points) > self.samples:
            points = random.Random(self.seed).sample(points, self.samples)
        return points


@register_strategy("coordinate")
class CoordinateDescentSearch(GeneratorStrategy):
    """Adaptive coordinate descent over the sweep's axes.

    From each of ``starts`` seeded random feasible points, the search sweeps
    one axis at a time: every feasible alternative value of that axis (other
    coordinates held fixed) is proposed as one batch, the best point under
    the scalarised objective (:func:`~repro.explore.frontier.scalar_score`)
    becomes the new current point, and the process repeats until a full pass
    over the axes improves nothing or ``max_rounds`` is hit.  An axis whose
    alternatives are all infeasible (constraint-pruned) -- or were all
    trimmed by the driver's budget -- is skipped, not an error.  Points
    already measured are never re-simulated, so restarts are cheap.
    """

    def __init__(self, seed: int = 0, starts: int = 2,
                 max_rounds: int = 8) -> None:
        if starts < 1:
            raise ValueError(f"starts must be >= 1, got {starts}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.seed = seed
        self.starts = starts
        self.max_rounds = max_rounds

    def rounds(self, state: SearchState):
        space = state.space
        points = space.points()
        if not points:
            return
        axis_names = space.axis_names
        by_coords: Dict[Tuple, DesignPoint] = {
            tuple(point[name] for name in axis_names): point
            for point in points
        }
        rng = random.Random(self.seed)

        def score_of(ep: EvaluatedPoint) -> float:
            return scalar_score(ep.metrics, state.objectives)

        for _ in range(self.starts):
            current = rng.choice(points)
            observed = yield [current]
            if not observed:
                continue  # budget exhausted before this start was measured
            current_ep = observed[0]
            for _ in range(self.max_rounds):
                improved = False
                for index, axis in enumerate(space.axes):
                    if len(axis.values) < 2:
                        continue
                    coords = tuple(current[name] for name in axis_names)
                    candidates = []
                    for value in axis.values:
                        candidate_coords = (coords[:index] + (value,)
                                            + coords[index + 1:])
                        candidate = by_coords.get(candidate_coords)
                        if candidate is not None and candidate != current:
                            candidates.append(candidate)
                    if not candidates:
                        continue  # every alternative on this axis infeasible
                    evaluated = yield candidates
                    if not evaluated:
                        continue  # whole batch trimmed by the budget
                    best = max(evaluated, key=score_of)
                    if score_of(best) > score_of(current_ep):
                        current, current_ep = best.point, best
                        improved = True
                if not improved:
                    break


def resolve_strategy(
    strategy: Union[str, SearchStrategy, None], **options
) -> SearchStrategy:
    """Coerce a name (plus options) or an instance into a strategy object."""
    if strategy is None:
        strategy = "grid"
    if isinstance(strategy, SearchStrategy):
        if options:
            raise ValueError("options only apply when naming a strategy")
        return strategy
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown search strategy {strategy!r}; known: {sorted(STRATEGIES)}"
        )
    try:
        return STRATEGIES[strategy](**options)
    except TypeError as error:
        raise ValueError(
            f"bad option(s) for strategy {strategy!r}: {error}"
        ) from None


def parse_strategy_options(tokens: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``key=value`` CLI tokens into a strategy-options dict.

    Values go through :func:`~repro.explore.space.parse_value`, so
    ``--strategy-opt samples=32 --strategy-opt model=gp`` becomes
    ``{"samples": 32, "model": "gp"}``.
    """
    options: Dict[str, object] = {}
    for token in tokens or ():
        key, sep, raw = token.partition("=")
        if not sep or not key:
            raise ValueError(
                f"bad strategy option {token!r}; expected key=value"
            )
        if key in options:
            raise ValueError(f"duplicate strategy option {key!r}")
        options[key] = parse_value(raw)
    return options


def strategy_from_request(
    request,
) -> Tuple[SearchStrategy, Optional[int]]:
    """Build ``(strategy, budget)`` from an explore wire request.

    The uniform form is ``{"strategy": name, "options": {key: value},
    "budget": N}``; the pre-redesign top-level ``samples`` / ``seed`` keys
    keep working for older clients (merged into ``options`` unless the new
    form already sets them).  Shared by the serve service and the cluster
    coordinator so both speak the same dialect.
    """
    strategy_name = request.get("strategy", "grid")
    raw_options = request.get("options") or {}
    if not isinstance(raw_options, dict) or any(
            not isinstance(key, str) for key in raw_options):
        raise ValueError("explore 'options' must be a {name: value} mapping")
    options = dict(raw_options)
    if "samples" in request and strategy_name == "random":
        options.setdefault("samples", int(request["samples"]))
    if "seed" in request and strategy_name in ("random", "coordinate",
                                               "surrogate"):
        options.setdefault("seed", int(request["seed"]))
    budget = request.get("budget")
    if budget is not None:
        budget = int(budget)
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
    return resolve_strategy(strategy_name, **options), budget
