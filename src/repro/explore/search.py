"""Search strategies: exhaustive, seeded random, adaptive coordinate descent.

Every strategy drives one :class:`~repro.explore.engine.PointEvaluator` (and
therefore one shared :class:`~repro.sim.jobs.JobExecutor`): candidates are
submitted in batches so parallel executors fan them out, and anything already
simulated -- earlier in the search, by another strategy, or in a previous
invocation via the on-disk cache -- costs nothing to revisit.  All randomness
is seeded, so a strategy's trajectory (and thus its reported point set) is
reproducible.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Sequence, Tuple, Union

from repro.explore.engine import EvaluatedPoint, PointEvaluator
from repro.explore.frontier import Objective, scalar_score
from repro.explore.space import DesignPoint, SweepSpec

__all__ = [
    "SearchStrategy",
    "GridSearch",
    "RandomSearch",
    "CoordinateDescentSearch",
    "STRATEGIES",
    "resolve_strategy",
]


class SearchStrategy(abc.ABC):
    """Picks which points of a sweep to evaluate, possibly adaptively."""

    name: str = "strategy"

    @abc.abstractmethod
    def run(self, space: SweepSpec, evaluator: PointEvaluator,
            objectives: Sequence[Objective]) -> List[EvaluatedPoint]:
        """Explore ``space``; return every evaluated point, in evaluation order."""


class GridSearch(SearchStrategy):
    """Exhaustive: evaluate every feasible point, one batch."""

    name = "grid"

    def run(self, space, evaluator, objectives):
        return evaluator.evaluate(space.points())


class RandomSearch(SearchStrategy):
    """Seeded uniform sampling without replacement."""

    name = "random"

    def __init__(self, samples: int = 16, seed: int = 0) -> None:
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self.samples = samples
        self.seed = seed

    def run(self, space, evaluator, objectives):
        points = space.points()
        if len(points) > self.samples:
            points = random.Random(self.seed).sample(points, self.samples)
        return evaluator.evaluate(points)


class CoordinateDescentSearch(SearchStrategy):
    """Adaptive coordinate descent over the sweep's axes.

    From each of ``starts`` seeded random feasible points, the search sweeps
    one axis at a time: every feasible value of that axis (other coordinates
    held fixed) is evaluated as one batch, the best point under the
    scalarised objective (:func:`~repro.explore.frontier.scalar_score`)
    becomes the new current point, and the process repeats until a full pass
    over the axes improves nothing or ``max_rounds`` is hit.  Points already
    measured -- by an earlier start, an earlier round, or a previous run via
    the result cache -- are never re-simulated, so restarts are cheap.
    """

    name = "coordinate"

    def __init__(self, seed: int = 0, starts: int = 2,
                 max_rounds: int = 8) -> None:
        if starts < 1:
            raise ValueError(f"starts must be >= 1, got {starts}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.seed = seed
        self.starts = starts
        self.max_rounds = max_rounds

    def run(self, space, evaluator, objectives):
        points = space.points()
        if not points:
            return []
        axis_names = space.axis_names
        by_coords: Dict[Tuple, DesignPoint] = {
            tuple(point[name] for name in axis_names): point
            for point in points
        }
        rng = random.Random(self.seed)
        trace: List[EvaluatedPoint] = []
        traced = set()

        def record(evaluated: Sequence[EvaluatedPoint]) -> None:
            for ep in evaluated:
                if ep.point not in traced:
                    traced.add(ep.point)
                    trace.append(ep)

        def score_of(ep: EvaluatedPoint) -> float:
            return scalar_score(ep.metrics, objectives)

        for _ in range(self.starts):
            current = rng.choice(points)
            (current_ep,) = evaluator.evaluate([current])
            record([current_ep])
            for _ in range(self.max_rounds):
                improved = False
                for index, axis in enumerate(space.axes):
                    if len(axis.values) < 2:
                        continue
                    coords = tuple(current[name] for name in axis_names)
                    candidates = []
                    for value in axis.values:
                        candidate_coords = (coords[:index] + (value,)
                                            + coords[index + 1:])
                        candidate = by_coords.get(candidate_coords)
                        if candidate is not None:
                            candidates.append(candidate)
                    evaluated = evaluator.evaluate(candidates)
                    record(evaluated)
                    best = max(evaluated, key=score_of)
                    if best.point != current and score_of(best) > score_of(current_ep):
                        current, current_ep = best.point, best
                        improved = True
                if not improved:
                    break
        return trace


#: Strategy factories by CLI name.
STRATEGIES = {
    "grid": GridSearch,
    "random": RandomSearch,
    "coordinate": CoordinateDescentSearch,
}


def resolve_strategy(
    strategy: Union[str, SearchStrategy, None], **options
) -> SearchStrategy:
    """Coerce a name (plus options) or an instance into a strategy object."""
    if strategy is None:
        return GridSearch()
    if isinstance(strategy, SearchStrategy):
        if options:
            raise ValueError("options only apply when naming a strategy")
        return strategy
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown search strategy {strategy!r}; known: {sorted(STRATEGIES)}"
        )
    return STRATEGIES[strategy](**options)
