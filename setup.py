"""Setuptools shim.

The environment this reproduction targets has no network access and no
``wheel`` package, so PEP 517 editable installs (which build a wheel) fail.
This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall
back to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
