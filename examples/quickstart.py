#!/usr/bin/env python3
"""Quickstart: compare Loom against the bit-parallel baseline on AlexNet.

This is the five-minute tour of the library:

1. build a network from the zoo and attach its published precision profile,
2. instantiate the DPNN baseline and the Loom variants,
3. run every layer through both and look at cycles, energy and traffic,
4. print the per-layer and whole-network speedups.

Run with::

    python examples/quickstart.py
"""

from repro import (
    DPNN,
    Loom,
    build_network,
    get_paper_profile,
    run_network,
)
from repro.sim.results import compare


def main() -> None:
    # 1. A network with its profile-derived per-layer precisions (Table 1).
    network = build_network("alexnet")
    network.attach_profile(get_paper_profile("alexnet", accuracy="100%"))
    print(network.summary())
    print()

    # 2. The accelerators.  Both are sized to the paper's main configuration:
    #    the equivalent of 128 16b x 16b multiply-accumulates per cycle.
    dpnn = DPNN()
    loom_variants = {
        "Loom-1b": Loom(bits_per_cycle=1),
        "Loom-2b": Loom(bits_per_cycle=2),
        "Loom-4b": Loom(bits_per_cycle=4),
    }

    # 3. Simulate.
    baseline = run_network(dpnn, network)
    print(f"{'layer':<12s}{'kind':<6s}{'DPNN cycles':>14s}{'Loom-1b cycles':>16s}"
          f"{'speedup':>9s}")
    loom_result = run_network(loom_variants["Loom-1b"], network)
    for base_layer, loom_layer in zip(baseline.layers, loom_result.layers):
        print(f"{base_layer.layer_name:<12s}{base_layer.layer_kind:<6s}"
              f"{base_layer.cycles:>14,.0f}{loom_layer.cycles:>16,.0f}"
              f"{base_layer.cycles / loom_layer.cycles:>9.2f}")
    print()

    # 4. Whole-network comparison for every variant.
    print(f"{'design':<10s}{'speedup':>9s}{'energy eff':>12s}"
          f"{'conv speedup':>14s}{'fc speedup':>12s}")
    for name, loom in loom_variants.items():
        result = run_network(loom, network)
        overall = compare(result, baseline)
        conv = compare(result, baseline, kind="conv")
        fc = compare(result, baseline, kind="fc")
        print(f"{name:<10s}{overall.speedup:>9.2f}"
              f"{overall.energy_efficiency:>12.2f}"
              f"{conv.speedup:>14.2f}{fc.speedup:>12.2f}")

    print()
    print("Loom's time scales with Pa x Pw for convolutions and with Pw for "
          "fully-connected layers;")
    print("every bit of precision the profile saves turns into speedup.")


if __name__ == "__main__":
    main()
