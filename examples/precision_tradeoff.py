#!/usr/bin/env python3
"""Accuracy / performance trade-off and the dynamic-precision machinery.

Loom lets a deployment trade accuracy for speed *on the fly*: feeding it a
more aggressive precision profile (the 99% column of Table 1 instead of the
100% one) immediately shortens every layer, and at runtime the hardware trims
the activation precision further per group of 256 values.

This example walks through all three levels on a small custom CNN so every
step runs in seconds:

1. derive a per-layer precision profile with the Judd-style profiler
   (synthetic weights + synthetic profiling images, top-1 agreement target),
2. check, with the functional bit-serial engine, that computing a layer at
   the profiled precision is exactly equivalent to integer arithmetic,
3. measure per-group dynamic activation precisions on the captured
   activations and compare the measured speedup with the analytical model
   the experiment harness uses,
4. show the end effect on the paper's networks: 100% vs 99% profiles.

Run with::

    python examples/precision_tradeoff.py
"""

import numpy as np

from repro import DPNN, Loom, build_network, get_paper_profile, run_network
from repro.core.dynamic_precision import (
    DynamicPrecisionModel,
    measure_network_dynamic_precisions,
)
from repro.core.serial_engine import bit_serial_fc
from repro.experiments.table1 import derive_profile_for_network
from repro.nn import Network
from repro.nn.layers import Conv2D, FullyConnected, Pool2D, ReLU, TensorShape
from repro.sim.results import compare
from repro.workloads.datasets import synthetic_image


def build_tiny_cnn() -> Network:
    """A small CNN (think embedded keyword/gesture model) used for the demo."""
    net = Network("tinycnn", TensorShape(3, 32, 32))
    net.add(Conv2D(name="conv1", out_channels=32, kernel=3, padding=1))
    net.add(ReLU(name="relu1"))
    net.add(Pool2D(name="pool1", kernel=2, stride=2))
    net.add(Conv2D(name="conv2", out_channels=64, kernel=3, padding=1))
    net.add(ReLU(name="relu2"))
    net.add(Pool2D(name="pool2", kernel=2, stride=2))
    net.add(FullyConnected(name="fc1", out_features=10))
    return net


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Profile-derived precisions on the tiny CNN.
    tiny = build_tiny_cnn()
    profile = derive_profile_for_network(tiny, target_score=1.0, batch=3, seed=7)
    print("Profiled per-layer precisions (tiny CNN, 100% top-1 agreement):")
    for layer, precision in zip(
            [lw.name for lw in tiny.compute_layers()],
            profile.conv_layers + profile.fc_layers):
        print(f"  {layer:<8s} activations {precision.activation_bits:>2d}b  "
              f"weights {precision.weight_bits:>2d}b")
    tiny.attach_profile(profile)
    print()

    # 2. Bit-serial arithmetic is exact: run one FC layer both ways.
    acts = rng.integers(0, 2 ** 6, size=64)
    weights = rng.integers(-2 ** 5, 2 ** 5, size=(10, 64))
    serial = bit_serial_fc(acts, weights, act_bits=6, weight_bits=6)
    reference = weights @ acts
    assert np.array_equal(serial.outputs, reference)
    print("Functional check: bit-serial FC == integer FC for all 10 outputs.")
    print()

    # 3. Dynamic precision: measured vs analytical.
    image = synthetic_image(tiny.input_shape, seed=3)
    measured = measure_network_dynamic_precisions(tiny, image, rng=rng)
    analytical = DynamicPrecisionModel()
    print(f"{'layer':<8s}{'profile Pa':>11s}{'measured Pa':>13s}"
          f"{'analytical Pa':>15s}")
    for lw in tiny.compute_layers():
        profile_bits = lw.precision.activation_bits
        print(f"{lw.name:<8s}{profile_bits:>11d}"
              f"{measured[lw.name]:>13.2f}"
              f"{analytical.effective_activation_bits(profile_bits):>15.2f}")
    print()

    # 4. The trade-off on the paper's networks.
    print("AlexNet / VGG-M: accepting a 1% relative top-1 accuracy loss")
    print(f"{'network':<10s}{'profile':<9s}{'Loom speedup':>13s}"
          f"{'energy eff':>12s}")
    for name in ("alexnet", "vggm"):
        for accuracy in ("100%", "99%"):
            network = build_network(name)
            network.attach_profile(get_paper_profile(name, accuracy))
            baseline = run_network(DPNN(), network)
            result = run_network(Loom(), network)
            comp = compare(result, baseline)
            print(f"{name:<10s}{accuracy:<9s}{comp.speedup:>13.2f}"
                  f"{comp.energy_efficiency:>12.2f}")


if __name__ == "__main__":
    main()
