"""Serve quickstart: the batching simulation service end to end.

Starts ``loom-repro serve --port 0`` as a real background *process* (the way
an operator would), waits for it to come up, and then exercises the client
contract the ISSUE promises:

1. ``GET /healthz`` answers;
2. a submitted job's result is **bit-identical** (the engine validator's
   field-for-field comparator) to the same job run in-process via
   ``execute_job`` -- the fast path on both sides;
3. a duplicate submission is answered from the warm store, and concurrent
   duplicates coalesce: the executor's statistics prove the simulation ran
   exactly once;
4. ``GET /metrics`` serves Prometheus text with the request counters and
   the executor phase histograms the observability layer promises;
5. ``POST /shutdown`` stops the server gracefully.

This script is also the CI smoke job for the serve subsystem.
"""

import os
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.explore import canonical_point, point_to_job
from repro.serve import ServeClient
from repro.sim.jobs import execute_job
from repro.sim.validate import compare_layer_results

POINT = {"network": "alexnet", "accelerator": "loom:bits_per_cycle=2"}


def start_server(tmp):
    """`loom-repro serve --port 0` in the background; returns (proc, url)."""
    ready_file = os.path.join(tmp, "serve-url.txt")
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--store", os.path.join(tmp, "serve.db"),
         "--ready-file", ready_file],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    deadline = time.time() + 60
    while time.time() < deadline:
        if os.path.exists(ready_file):
            with open(ready_file, encoding="utf-8") as handle:
                return proc, handle.read().strip()
        if proc.poll() is not None:
            raise RuntimeError(
                f"server died during startup: {proc.stderr.read().decode()}")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("server did not come up within 60s")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        proc, url = start_server(tmp)
        try:
            client = ServeClient(url)
            assert client.healthz()["ok"] is True
            print(f"server up at {url}")

            # Served result == in-process result, field for field.
            served = client.submit(POINT)
            local = execute_job(point_to_job(canonical_point(POINT)))
            mismatches = compare_layer_results(served.result.layers,
                                               local.layers)
            assert mismatches == [], mismatches
            print(f"served result bit-identical to in-process fast path "
                  f"({len(served.result.layers)} layers compared, "
                  f"status: {served.status})")

            # Warm-store duplicate plus concurrent coalesced duplicates.
            repeat = client.submit(POINT)
            assert repeat.status == "cached", repeat.status
            outcomes = []

            def submit():
                outcomes.append(client.submit(POINT))

            threads = [threading.Thread(target=submit) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(o.result.to_dict() == served.result.to_dict()
                       for o in outcomes)
            stats = client.stats()
            assert stats["executor"]["max_executions_per_key"] == 1, stats
            print(f"duplicate submissions coalesced: "
                  f"{stats['service']['submitted_points']} points submitted, "
                  f"{stats['executor']['executed']} simulation(s) executed, "
                  f"max executions per key = "
                  f"{stats['executor']['max_executions_per_key']}")

            # A stock Prometheus scrape sees the request and executor series.
            with urllib.request.urlopen(url + "/metrics",
                                        timeout=10) as response:
                assert response.status == 200
                metrics = response.read().decode("utf-8")
            for series in ("loom_serve_requests_total",
                           "loom_serve_request_seconds_bucket",
                           'loom_executor_phase_seconds_count'
                           '{phase="simulate"}',
                           "loom_serve_uptime_seconds"):
                assert series in metrics, f"missing metric series: {series}"
            print("GET /metrics serves Prometheus text "
                  f"({len(metrics.splitlines())} lines, request + executor "
                  f"phase series present)")

            client.shutdown()
        finally:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert proc.returncode == 0, proc.stderr.read().decode()
        print("server shut down gracefully")


if __name__ == "__main__":
    main()
