"""Cluster quickstart: the sharded serve cluster end to end.

Starts ``loom-repro cluster --workers 2 --port 0`` as a real background
*process* (the way an operator would) and exercises the cluster contract:

1. ``GET /healthz`` answers and ``GET /stats`` shows both shards healthy;
2. a design-space sweep through ``RemoteExecutor(stream=True)`` — the same
   path ``loom-repro explore --remote URL --stream`` takes — produces
   results **bit-identical** to the in-process batched engine, both per
   submitted point (field-for-field ``LayerResult`` equality) and per
   exploration metric;
3. ``GET /metrics`` on the coordinator scrapes as Prometheus text with the
   routing and shard-health series populated;
4. ``POST /shutdown`` stops the coordinator and both workers gracefully.

This script is also the CI smoke job for the cluster subsystem.
"""

import os
import subprocess
import sys
import tempfile
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.explore import Axis, SweepSpec, explore, job_to_point, point_to_job
from repro.serve import RemoteExecutor, ServeClient
from repro.sim.jobs import JobExecutor
from repro.sim.validate import compare_layer_results

SPACE = SweepSpec(
    axes=[Axis("equivalent_macs", (32, 64)),
          Axis("accelerator", ("loom", "dstripes"))],
    base={"network": "alexnet"},
)


def start_cluster(tmp):
    """``loom-repro cluster --workers 2 --port 0`` in the background."""
    ready_file = os.path.join(tmp, "cluster-url.txt")
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "cluster",
         "--workers", "2", "--port", "0",
         "--store-dir", os.path.join(tmp, "stores"),
         "--ready-file", ready_file],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    deadline = time.time() + 120
    while time.time() < deadline:
        if os.path.exists(ready_file):
            with open(ready_file, encoding="utf-8") as handle:
                return proc, handle.read().strip()
        if proc.poll() is not None:
            raise RuntimeError(
                f"cluster died during startup: {proc.stderr.read().decode()}")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("cluster did not come up within 120s")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        proc, url = start_cluster(tmp)
        try:
            client = ServeClient(url, timeout_s=120.0)
            assert client.healthz()["ok"] is True
            stats = client.stats()
            shards = stats["shards"]
            assert len(shards) == 2
            assert all(s["healthy"] for s in shards.values())
            print(f"coordinator up at {url} with "
                  f"{len(shards)} healthy workers")

            # Sweep through the cluster == in-process batched engine.
            remote = explore(SPACE, executor=RemoteExecutor(client, stream=True))
            with JobExecutor() as executor:
                local = explore(SPACE, executor=executor, engine="batched")
            assert len(remote.evaluated) == len(local.evaluated) == SPACE.size
            for ours, ref in zip(remote.evaluated, local.evaluated):
                assert ours.point == ref.point
                assert ours.metrics == ref.metrics
            print(f"remote sweep bit-identical to batched engine "
                  f"({len(remote.evaluated)} points, every metric equal)")

            # Per-point layer results, field for field, against the
            # batched engine directly (the sweep above compared derived
            # metrics; this compares the raw simulation output).
            jobs = [point_to_job(p) for p in SPACE.points()]
            served = client.submit_points([job_to_point(j) for j in jobs])
            with JobExecutor() as executor:
                reference = executor.run(jobs, engine="batched")
            for entry, ref in zip(served, reference):
                mismatches = compare_layer_results(entry.result.layers,
                                                   ref.layers)
                assert mismatches == [], mismatches
            print(f"served layer results bit-identical to batched engine "
                  f"({len(served)} points compared)")

            # The coordinator scrapes as Prometheus text.
            with urllib.request.urlopen(url + "/metrics", timeout=30) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                text = resp.read().decode("utf-8")
            for series in ("loom_coordinator_requests_total",
                           "loom_coordinator_points_routed_total",
                           "loom_coordinator_shard_healthy"):
                assert f"# TYPE {series}" in text, series
            routed = sum(
                float(line.rsplit(" ", 1)[1])
                for line in text.splitlines()
                if line.startswith("loom_coordinator_points_routed_total"))
            assert routed >= SPACE.size, text
            print(f"metrics scrape ok ({routed:.0f} points routed "
                  f"across the shards)")

            client.shutdown()
        finally:
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert proc.returncode == 0, proc.stderr.read().decode()
        print("cluster shut down gracefully")


if __name__ == "__main__":
    main()
