#!/usr/bin/env python3
"""Design-space exploration with `repro.explore`: sweeps, search, frontiers.

An architect sizing a precision-exploiting accelerator faces a
multi-dimensional trade: scale (equivalent MACs), design (Loom variants vs
DStripes), memory sizing and the off-chip channel all move performance,
energy and silicon area in different directions.  This example shows the
three layers of the exploration subsystem on that problem:

1. a declarative :class:`~repro.explore.SweepSpec` -- axes x base values x a
   feasibility constraint ("the activation memory must hold the working
   set") -- expanded into deduplicated simulation jobs;
2. an exhaustive grid sweep through one shared
   :class:`~repro.sim.jobs.JobExecutor`, reported as a Pareto frontier over
   (speedup, energy efficiency, area);
3. an adaptive coordinate-descent search that re-explores the same space and
   finds the composite-score optimum while simulating only a fraction of the
   grid -- everything it revisits is answered from the executor's cache.

Run with::

    python examples/design_space_exploration.py
"""

from repro.explore import (
    Axis,
    CoordinateDescentSearch,
    SweepSpec,
    am_fits_working_set,
    explore,
    frontier_table,
    scalar_score,
    sweep_table,
)
from repro.sim.jobs import JobExecutor


def main() -> None:
    space = SweepSpec(
        axes=[
            Axis("equivalent_macs", (32, 64, 128, 256)),
            Axis("accelerator", ("loom", "loom:bits_per_cycle=2",
                                 "loom:bits_per_cycle=4", "dstripes")),
            Axis("am_capacity_bytes", (512 * 1024, 2 * 1024 * 1024)),
        ],
        base={"network": "alexnet", "dram": "lpddr4-4267"},
        constraints=[am_fits_working_set()],
    )
    print(f"sweep: {space.describe()}")
    print(f"{space.size} raw points, {len(space.points())} feasible, "
          f"{len(space.unique_jobs())} unique simulations\n")

    objectives = ("speedup", "energy_efficiency", "area")
    with JobExecutor() as executor:
        grid = explore(space, strategy="grid", objectives=objectives,
                       executor=executor)
        print(sweep_table(grid))
        print()
        print(frontier_table(grid))
        print()

        # The adaptive search reuses the same executor: every point the grid
        # already simulated is a cache hit, and a fresh-cache run would still
        # only touch a fraction of the space.
        simulated_before = executor.stats.executed
        adaptive = explore(space, strategy=CoordinateDescentSearch(seed=1),
                           objectives=objectives, executor=executor)
        best = max(adaptive.evaluated,
                   key=lambda ep: scalar_score(ep.metrics, adaptive.objectives))
        print(f"coordinate descent evaluated {len(adaptive.evaluated)} of "
              f"{len(space.points())} feasible points "
              f"({executor.stats.executed - simulated_before} new simulations) "
              f"and picked:")
        print(f"  {best.point.label(space.axis_names)}  "
              f"speedup {best.metrics['speedup']:.2f}  "
              f"efficiency {best.metrics['energy_efficiency']:.2f}  "
              f"area {best.metrics['area_mm2']:.2f} mm^2")

    print()
    print("Reading the frontier: small Loom configurations dominate on "
          "speedup and efficiency per area;")
    print("DStripes holds the low-area corner, and oversized activation "
          "memories never pay for themselves.")


if __name__ == "__main__":
    main()
