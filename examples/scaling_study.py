#!/usr/bin/env python3
"""Design-space exploration: how far does Loom's advantage scale?

An SoC architect choosing an accelerator size wants to know where the
precision-exploiting design stops paying for itself.  This example sweeps the
equivalent peak compute bandwidth (the Figure 5 axis) and, for each size,
compares Loom-1b against DPNN and DStripes on performance, performance per
area and energy efficiency -- including the effect of the single LPDDR4
channel on the fully-connected layers.

It also demonstrates the alternative tiling knob the paper leaves as future
work ("32 filters over 64 windows"): at large configurations, spreading the
grid over more windows and fewer filters recovers some of the utilisation the
rigid organisation loses.

Run with::

    python examples/scaling_study.py
"""

from repro import DPNN, DStripes, Loom, AcceleratorConfig
from repro.experiments.common import build_profiled_network
from repro.memory.dram import LPDDR4_4267
from repro.quant import paper_networks
from repro.sim import geomean, run_network
from repro.sim.results import compare

CONFIGS = (32, 64, 128, 256, 512)


def geomean_speedup(design, baseline, networks, kind=None):
    ratios = []
    for network in networks:
        ratios.append(
            compare(run_network(design, network),
                    run_network(baseline, network), kind=kind).speedup
        )
    return geomean(ratios)


def main() -> None:
    networks = [build_profiled_network(name, "100%") for name in paper_networks()]

    print("Scaling study (all layers, LPDDR4-4267 off-chip, geomean over the "
          "six networks)")
    print(f"{'config':>7s}{'Loom perf':>11s}{'DStripes perf':>15s}"
          f"{'Loom perf/area':>16s}{'Loom alt-tiling perf':>22s}")
    for macs in CONFIGS:
        config = AcceleratorConfig(equivalent_macs=macs, dram=LPDDR4_4267)
        dpnn = DPNN(config)
        loom = Loom(config, bits_per_cycle=1)
        dstripes = DStripes(config)
        # The future-work tiling: trade filter rows for window columns.
        fanout = 4 if macs >= 256 else 1
        loom_alt = Loom(config, bits_per_cycle=1, window_fanout=fanout)

        loom_perf = geomean_speedup(loom, dpnn, networks)
        ds_perf = geomean_speedup(dstripes, dpnn, networks)
        alt_perf = geomean_speedup(loom_alt, dpnn, networks)
        perf_per_area = loom_perf / (loom.total_area_mm2() / dpnn.total_area_mm2())
        print(f"{macs:>7d}{loom_perf:>11.2f}{ds_perf:>15.2f}"
              f"{perf_per_area:>16.2f}{alt_perf:>22.2f}")

    print()
    print("Loom's advantage over DPNN shrinks as the configuration grows "
          "(under-utilisation of the")
    print("wider filter grid) until DStripes catches up around the 256-512 "
          "configurations; the")
    print("window-major tiling recovers part of that loss, which is why the "
          "paper flags it as future work.")


if __name__ == "__main__":
    main()
