#!/usr/bin/env python3
"""Future-work extension: what would weight sparsity add on top of precision?

The paper closes with "future work may consider extending LM to further
exploit weight sparsity".  This example quantifies the headroom of that
extension on synthetic magnitude-pruned weights:

1. generate per-layer weight tensors for AlexNet at the Table 1 precisions,
2. magnitude-prune them at several pruning rates,
3. measure per-16-weight-group sparsity (groups that are entirely zero could
   skip their `Pa x Pw` serial steps on a sparsity-aware Loom),
4. combine the per-layer skip bounds with Loom's per-layer execution times to
   get an upper bound on the extra network-level speedup.

Run with::

    python examples/sparsity_extension.py
"""

import numpy as np

from repro import Loom, build_network, get_paper_profile, run_network
from repro.core.sparsity import analyze_weight_sparsity, sparse_speedup_bound
from repro.workloads.synthetic import SyntheticTensorGenerator


def prune(codes: np.ndarray, rate: float) -> np.ndarray:
    """Zero the smallest-magnitude fraction ``rate`` of the weights."""
    threshold = np.quantile(np.abs(codes), rate)
    return np.where(np.abs(codes) < threshold, 0, codes)


def main() -> None:
    network = build_network("alexnet")
    network.attach_profile(get_paper_profile("alexnet", "100%"))
    loom = Loom(bits_per_cycle=1)
    loom_result = run_network(loom, network)
    layer_cycles = {lr.layer_name: lr.cycles for lr in loom_result.layers}

    generator = SyntheticTensorGenerator(seed=0)
    layers = network.compute_layers()

    print("Weight-sparsity headroom on top of Loom's precision gains (AlexNet,")
    print("synthetic magnitude-pruned weights, 16-weight skip groups)\n")
    print(f"{'pruning rate':>13s}{'weight sparsity':>17s}{'group sparsity':>16s}"
          f"{'extra speedup bound':>21s}")
    for rate in (0.0, 0.5, 0.7, 0.9):
        per_layer = {}
        weight_sparsities = []
        for lw in layers:
            codes = generator.weights(min(lw.weight_count, 65536),
                                      lw.precision.weight_bits)
            pruned = prune(codes, rate) if rate > 0 else codes
            stats = analyze_weight_sparsity(pruned, lw.name)
            per_layer[lw.name] = stats
            weight_sparsities.append(stats.weight_sparsity)
        bound = sparse_speedup_bound(per_layer, layer_cycles)
        avg_weight_sparsity = float(np.mean(weight_sparsities))
        avg_group_sparsity = float(np.mean(
            [s.group_sparsity for s in per_layer.values()]))
        print(f"{rate:>13.0%}{avg_weight_sparsity:>17.2%}"
              f"{avg_group_sparsity:>16.2%}{bound:>21.2f}")

    print()
    print("Scattered zeros alone do not help a group-skipping design -- whole")
    print("16-weight groups must be empty -- which is exactly why the paper "
          "leaves")
    print("finer-grained sparsity support to future work.")


if __name__ == "__main__":
    main()
