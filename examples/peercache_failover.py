"""Peer-cache failover demo: a dead shard's results survive as cache hits.

Builds a 2-worker cluster with the shared cache tier enabled (the
``--peer-cache`` default), simulates a small design matrix, then kills one
worker mid-flight and submits the same matrix again. The contract this
script (and the CI ``cluster-smoke`` job running it) asserts:

1. every already-simulated key of the **dead** shard is answered from the
   peer tier with status ``cached`` — no re-simulation — because fresh
   results were written through to each key's failover target while both
   shards were alive;
2. the coordinator's survivor probe counted those answers
   (``peer_cache_answers`` / ``loom_coordinator_peer_cache_hits_total``);
3. the re-served results are bit-identical to the first run;
4. worker ``/metrics`` exposes the new ``loom_peer_cache_*`` series.

Runs in-process (``ClusterWorker`` + ``ClusterCoordinator`` objects) so the
kill is deterministic — the operator-facing process flow is covered by
``cluster_quickstart.py``.
"""

import os
import sys
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster import ClusterCoordinator, ClusterWorker
from repro.serve import ServeClient
from repro.sim.validate import compare_layer_results

MATRIX = [{"network": network, "accelerator": accelerator}
          for network in ("alexnet", "nin")
          for accelerator in ("loom", "dpnn", "dstripes")]


def scrape(url):
    with urllib.request.urlopen(url + "/metrics", timeout=30.0) as response:
        return response.read().decode("utf-8")


def main():
    workers = [ClusterWorker(), ClusterWorker()]
    for worker in workers:
        worker.start()
    coordinator = ClusterCoordinator([w.url for w in workers],
                                     health_interval_s=60.0)
    coordinator.start()
    try:
        client = ServeClient(coordinator.url, timeout_s=120.0)
        first = client.submit_points(MATRIX)
        assert {entry.status for entry in first} == {"executed"}
        # Let every fire-and-forget write-through replica land.
        for worker in workers:
            assert worker.peer_cache is not None, "ring push did not happen"
            assert worker.peer_cache.flush_writes(timeout_s=30.0)

        victim, survivor = workers
        victim_keys = [entry.key for entry in first
                       if coordinator.ring.node_for(entry.key) == victim.url]
        print(f"simulated {len(first)} points; "
              f"{len(victim_keys)} owned by the victim shard")
        victim._server.stop(drain_timeout_s=0.0)  # kill one shard

        again = client.submit_points(MATRIX)
        by_key = {entry.key: entry for entry in again}
        cached = [key for key in victim_keys
                  if by_key[key].status == "cached"]
        assert len(cached) >= 0.9 * len(victim_keys), (
            f"only {len(cached)}/{len(victim_keys)} dead-shard keys were "
            f"answered from the peer tier")
        assert coordinator.stats.peer_cache_answers >= len(cached)
        assert coordinator._peer_cache_hits_total.value() >= len(cached)
        for entry, original in zip(again, first):
            assert compare_layer_results(entry.result.layers,
                                         original.result.layers) == []
        print(f"survivor answered {len(cached)}/{len(victim_keys)} "
              f"dead-shard keys from the peer cache, bit-identical")

        metrics = scrape(survivor.url)
        for series in ("loom_peer_cache_hits_total",
                       "loom_peer_cache_misses_total",
                       "loom_peer_cache_timeouts_total",
                       "loom_peer_cache_fetch_seconds_bucket"):
            assert series in metrics, f"missing /metrics series {series}"
        coordinator_metrics = scrape(coordinator.url)
        assert "loom_coordinator_peer_cache_hits_total" in coordinator_metrics
        print("peer-cache /metrics series present on worker and coordinator")
        print("peer-cache failover OK")
    finally:
        coordinator.stop()
        for worker in workers:
            worker.stop()


if __name__ == "__main__":
    main()
