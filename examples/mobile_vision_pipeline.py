#!/usr/bin/env python3
"""Embedded vision pipeline: a bandwidth-constrained SoC running several CNNs.

Loom targets area- and bandwidth-constrained System-on-Chip designs -- think
computational photography or always-on vision on a phone -- where off-chip
memory connections are the scarce resource.  This example models such a
deployment:

* a single LPDDR4-4267 channel shared by the accelerator,
* a 1-2 MB on-chip activation memory (Loom's bit-interleaved storage lets it
  use half of what the bit-parallel design needs),
* a pipeline of three networks typical of a camera stack: a fast
  classification pass (AlexNet), a detection backbone (GoogLeNet) and a
  high-quality segmentation-style backbone (VGG-19).

For each accelerator the example reports frames per second, energy per frame
and off-chip traffic per frame -- the three quantities an SoC architect would
trade off.

Run with::

    python examples/mobile_vision_pipeline.py
"""

from repro import DPNN, DStripes, Loom, AcceleratorConfig
from repro.experiments.common import build_profiled_network
from repro.memory.dram import LPDDR4_4267
from repro.sim import run_network

PIPELINE = ("alexnet", "googlenet", "vgg19")


def main() -> None:
    config = AcceleratorConfig(equivalent_macs=128, dram=LPDDR4_4267)
    designs = {
        "DPNN": DPNN(config),
        "DStripes": DStripes(config),
        "Loom-1b": Loom(config, bits_per_cycle=1),
        "Loom-2b": Loom(config, bits_per_cycle=2),
    }
    networks = [build_profiled_network(name, "100%") for name in PIPELINE]

    print("Embedded vision pipeline on a single LPDDR4-4267 channel "
          f"({LPDDR4_4267.peak_bandwidth_gb_per_s:.1f} GB/s peak)")
    print(f"pipeline stages: {', '.join(PIPELINE)}")
    print()
    print(f"{'design':<10s}{'pipeline fps':>13s}{'mJ / frame':>12s}"
          f"{'off-chip MB / frame':>21s}{'on-chip memory':>16s}")
    for name, accel in designs.items():
        total_time_s = 0.0
        total_energy_pj = 0.0
        total_offchip_bits = 0.0
        for network in networks:
            result = run_network(accel, network)
            total_time_s += result.execution_time_s()
            total_energy_pj += result.total_energy_pj()
            for layer, lw in zip(result.layers, network.compute_layers()):
                weight_bits, act_bits = accel.storage_precisions(lw)
                traffic = accel.hierarchy.layer_traffic(
                    weight_count=lw.weight_count,
                    input_activations=lw.input_activations,
                    output_activations=lw.output_activations,
                    weight_bits=weight_bits,
                    activation_bits=act_bits,
                    is_fc=lw.is_fc,
                )
                total_offchip_bits += traffic.offchip_bits
        fps = 1.0 / total_time_s
        energy_mj = total_energy_pj * 1e-9
        offchip_mb = total_offchip_bits / 8.0 / 1e6
        onchip = (accel.hierarchy.activation_memory.capacity_mb
                  + accel.hierarchy.weight_memory.capacity_mb)
        print(f"{name:<10s}{fps:>13.1f}{energy_mj:>12.2f}"
              f"{offchip_mb:>21.1f}{onchip:>14.1f}MB")

    print()
    print("Loom sustains the highest pipeline frame rate at the same memory "
          "bandwidth because it")
    print("moves and computes only the bits each layer's precision actually "
          "needs.")


if __name__ == "__main__":
    main()
