"""Pytest root configuration.

Ensures ``src/`` is importable even when the package has not been installed
(some offline environments lack the ``wheel`` package that PEP 517 editable
installs require; ``python setup.py develop`` or this path hook both work).

Also defines the ``--update-golden`` flag (regenerates the committed
``tests/golden/*.json`` snapshots instead of comparing against them) and pins
the Hypothesis profile for the property-based tests: derandomized with a
bounded example count, so CI runs are deterministic and time-boxed.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is optional tooling
    pass
else:
    # Deterministic, bounded profile: CI must not flake on random examples
    # or spend unbounded time shrinking.  Failing seeds reproduce exactly.
    settings.register_profile(
        "repro-ci", derandomize=True, max_examples=40, deadline=None,
        print_blob=True,
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-ci"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate tests/golden/*.json snapshots instead of comparing",
    )
