"""Pytest root configuration.

Ensures ``src/`` is importable even when the package has not been installed
(some offline environments lack the ``wheel`` package that PEP 517 editable
installs require; ``python setup.py develop`` or this path hook both work).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
